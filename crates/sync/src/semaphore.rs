//! A fair, abortable counting semaphore on top of CQS (paper, §4.3 and
//! Appendix D, Listing 16).
//!
//! The entire algorithm is the `state` counter plus three-line
//! `acquire`/`release` bodies — everything difficult lives in the CQS.

use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;

use cqs_core::{
    CancellationMode, Cancelled, Cqs, CqsCallbacks, CqsConfig, CqsFuture, ReclaimerKind,
    ResumeMode, Suspend,
};
use cqs_stats::CachePadded;

/// Hook a sharded wrapper installs to learn that a cancellation refused an
/// in-flight resume and re-banked its permit. See
/// [`SemaphoreCallbacks::complete_refused_resume`].
pub(crate) type RefusalHook = Box<dyn Fn() + Send + Sync>;

/// Semaphore state shared with the smart-cancellation callbacks:
/// `state >= 0` is the number of available permits, `state < 0` the negated
/// number of waiters.
struct SemaphoreCallbacks {
    state: Arc<CachePadded<AtomicI64>>,
    /// Invoked after a refusal has fully settled (permit re-banked and the
    /// refused value consumed). A refusal can settle on the *cancelling*
    /// thread — when the resume delegated its value to the mid-flight
    /// canceller — after the releasing thread has long returned, so a
    /// sharded wrapper cannot run its no-idle-permit sweep from the release
    /// path alone; this hook hands it the only thread that knows.
    on_refusal: Option<RefusalHook>,
}

impl std::fmt::Debug for SemaphoreCallbacks {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SemaphoreCallbacks")
            .field("state", &self.state)
            .field("on_refusal", &self.on_refusal.is_some())
            .finish()
    }
}

impl CqsCallbacks<()> for SemaphoreCallbacks {
    fn on_cancellation(&self) -> bool {
        // Either increment the number of available permits or decrement the
        // number of waiters. If a waiter was deregistered (s < 0) the
        // cancellation completes; otherwise a concurrent release() is bound
        // to resume this waiter and must be refused — the permit is already
        // back in `state`.
        let s = self.state.fetch_add(1, Ordering::SeqCst);
        s < 0
    }

    fn complete_refused_resume(&self, _permit: ()) {
        // The permit was returned to `state` by on_cancellation already,
        // which strictly precedes this call in both refusal paths (the
        // canceller swaps the cell to REFUSE / observes the delegated value
        // only after its re-banking increment).
        if let Some(hook) = &self.on_refusal {
            hook();
        }
    }
}

/// A fair counting semaphore: at most `permits` holders at a time, waiters
/// served in FIFO order, waiting abortable at any time.
///
/// Create it with [`Semaphore::new`] (asynchronous resumption — fastest) or
/// [`Semaphore::new_sync`] (synchronous resumption — enables
/// [`try_acquire`](Semaphore::try_acquire), see the paper's Appendix B for
/// why non-blocking acquisition requires the synchronous mode).
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use cqs_sync::Semaphore;
///
/// let semaphore = Arc::new(Semaphore::new(2));
/// semaphore.acquire().wait().unwrap();
/// semaphore.acquire().wait().unwrap();
/// // Third acquirer would wait; release first.
/// semaphore.release();
/// semaphore.acquire().wait().unwrap();
/// # semaphore.release(); semaphore.release();
/// ```
#[derive(Debug)]
pub struct Semaphore {
    /// Cache-line padded: acquirers and releasers from every thread hammer
    /// this one word; padding keeps it from false-sharing with whatever the
    /// allocator places next to it.
    state: Arc<CachePadded<AtomicI64>>,
    cqs: Cqs<(), SemaphoreCallbacks>,
    permits: usize,
    sync_mode: bool,
}

impl Semaphore {
    /// Creates a semaphore with `permits` permits using asynchronous
    /// resumption (the default, fastest mode).
    ///
    /// # Panics
    ///
    /// Panics if `permits` is zero.
    pub fn new(permits: usize) -> Self {
        Self::with_mode(permits, ResumeMode::Asynchronous, None, None)
    }

    /// Creates an asynchronous-resumption semaphore whose waiter queue uses
    /// the given memory-reclamation backend instead of the process-wide
    /// [`cqs_core::default_reclaimer`]. See the `cqs_reclaim` crate docs
    /// for the trade-offs between the backends.
    ///
    /// # Panics
    ///
    /// Panics if `permits` is zero.
    pub fn with_reclaimer(permits: usize, reclaimer: ReclaimerKind) -> Self {
        Self::with_mode(permits, ResumeMode::Asynchronous, None, Some(reclaimer))
    }

    /// Creates a semaphore using synchronous resumption, which additionally
    /// supports [`try_acquire`](Semaphore::try_acquire).
    ///
    /// # Panics
    ///
    /// Panics if `permits` is zero.
    pub fn new_sync(permits: usize) -> Self {
        Self::with_mode(permits, ResumeMode::Synchronous, None, None)
    }

    /// Like [`new_sync`](Semaphore::new_sync), but with an explicit
    /// rendezvous spin limit: how long a releaser waits for a lagging
    /// acquirer before breaking the cell and retrying (Listing 16's
    /// bounded wait). Low limits make broken rendezvous frequent; tests
    /// use `0` to exercise the retry protocol deterministically.
    ///
    /// # Panics
    ///
    /// Panics if `permits` is zero.
    pub fn new_sync_with_spin(permits: usize, spin_limit: usize) -> Self {
        Self::with_mode(permits, ResumeMode::Synchronous, Some(spin_limit), None)
    }

    /// Builds a shard of a sharded semaphore: asynchronous resumption with
    /// `initial` of the primitive's `cap` total permits banked here. The
    /// shard's excess-release accounting is capped at the *total* because
    /// rebalancing migrates credit between shards, so any one shard may
    /// transiently bank every permit. `freelist_slots` is scaled down by
    /// the shard count, bounding the idle segments pinned by the whole
    /// primitive to `max(DEFAULT_FREELIST_SLOTS, shards)` — the
    /// single-queue envelope up to 4 shards, one per shard beyond that
    /// (each shard keeps at least one slot).
    /// `on_refusal` is invoked whenever a cancellation refuses an in-flight
    /// resume on this shard (re-banking the permit here), possibly on the
    /// cancelling thread after the releaser already returned — the wrapper
    /// runs its cross-shard sweep from it.
    pub(crate) fn with_initial(
        cap: usize,
        initial: usize,
        label: &'static str,
        freelist_slots: usize,
        on_refusal: Option<RefusalHook>,
        reclaimer: Option<ReclaimerKind>,
    ) -> Self {
        assert!(cap > 0, "a semaphore needs at least one permit");
        debug_assert!(initial <= cap, "initial share exceeds the permit cap");
        let state = Arc::new(CachePadded::new(AtomicI64::new(initial as i64)));
        let mut config = CqsConfig::new()
            .resume_mode(ResumeMode::Asynchronous)
            .cancellation_mode(CancellationMode::Smart)
            .freelist_slots(freelist_slots)
            .label(label);
        if let Some(kind) = reclaimer {
            config = config.reclaimer(kind);
        }
        let cqs = Cqs::new(
            config,
            SemaphoreCallbacks {
                state: Arc::clone(&state),
                on_refusal,
            },
        );
        Semaphore {
            state,
            cqs,
            permits: cap,
            sync_mode: false,
        }
    }

    fn with_mode(
        permits: usize,
        mode: ResumeMode,
        spin_limit: Option<usize>,
        reclaimer: Option<ReclaimerKind>,
    ) -> Self {
        assert!(permits > 0, "a semaphore needs at least one permit");
        let state = Arc::new(CachePadded::new(AtomicI64::new(permits as i64)));
        let mut config = CqsConfig::new()
            .resume_mode(mode)
            .cancellation_mode(CancellationMode::Smart)
            .label("semaphore.acquire");
        if let Some(limit) = spin_limit {
            config = config.spin_limit(limit);
        }
        if let Some(kind) = reclaimer {
            config = config.reclaimer(kind);
        }
        let cqs = Cqs::new(
            config,
            SemaphoreCallbacks {
                state: Arc::clone(&state),
                on_refusal: None,
            },
        );
        Semaphore {
            state,
            cqs,
            permits,
            sync_mode: mode == ResumeMode::Synchronous,
        }
    }

    /// The number of permits this semaphore was created with.
    pub fn permits(&self) -> usize {
        self.permits
    }

    /// The memory-reclamation backend guarding this semaphore's waiter
    /// queue (resolved once at construction).
    pub fn reclaimer(&self) -> ReclaimerKind {
        self.cqs.reclaimer()
    }

    /// A snapshot of the number of currently available permits (zero if
    /// there are waiters).
    pub fn available_permits(&self) -> usize {
        self.state.load(Ordering::SeqCst).max(0) as usize
    }

    /// Watchdog id keying this semaphore's waiter records and its permit
    /// gauge in cqs-watch reports. Always `0` when the `watch` feature is
    /// off.
    pub fn watch_id(&self) -> u64 {
        self.cqs.watch_id()
    }

    /// Acquires a permit: completes immediately if one is available,
    /// otherwise returns a future completed by a future
    /// [`release`](Semaphore::release) in FIFO order. Cancel the future to
    /// abort waiting.
    pub fn acquire(&self) -> CqsFuture<()> {
        // Linearizability-history seam (cqs-check): the invoke edge covers
        // the whole operation including retries; the *response* edge is
        // recorded by the harness once the returned future resolves, since
        // only the caller knows when it stops waiting or cancels.
        cqs_chaos::record!(self as *const Self as u64, "sem.acquire", Invoke, 0);
        loop {
            // Fail fast on a closed semaphore *before* touching `state`:
            // past this check a racing `close()` is handled by the CQS
            // itself (the suspension self-cancels and the smart callbacks
            // restore the counter).
            if self.cqs.is_closed() {
                return CqsFuture::cancelled();
            }
            let s = self.state.fetch_sub(1, Ordering::SeqCst);
            cqs_watch::gauge!(self.cqs.watch_id(), "state", s - 1);
            if s > 0 {
                cqs_stats::bump!(immediate_hits);
                return CqsFuture::immediate(());
            }
            match self.cqs.suspend() {
                Suspend::Future(f) => return f,
                // Synchronous mode: the rendezvous failed; restart.
                Suspend::Broken => {
                    std::thread::yield_now();
                    continue;
                }
            }
        }
    }

    /// Blocking convenience: acquires a permit and returns a guard that
    /// releases it on drop.
    ///
    /// # Errors
    ///
    /// Never fails in practice (acquisition is only aborted through a
    /// cancelled future, which this method does not expose); the `Result`
    /// mirrors [`CqsFuture::wait`].
    pub fn acquire_blocking(&self) -> Result<SemaphoreGuard<'_>, Cancelled> {
        self.acquire().wait()?;
        cqs_watch::acquired!(self.cqs.watch_id(), "semaphore.acquire", false);
        Ok(SemaphoreGuard { semaphore: self })
    }

    /// Blocking convenience with a deadline: acquires a permit or aborts
    /// the queued request after `timeout`.
    ///
    /// # Errors
    ///
    /// Returns [`Cancelled`] if the timeout elapsed first.
    pub fn acquire_timeout(
        &self,
        timeout: std::time::Duration,
    ) -> Result<SemaphoreGuard<'_>, Cancelled> {
        self.acquire().wait_timeout(timeout)?;
        cqs_watch::acquired!(self.cqs.watch_id(), "semaphore.acquire", false);
        Ok(SemaphoreGuard { semaphore: self })
    }

    /// Attempts to take a permit without waiting.
    ///
    /// Returns `true` if a permit was acquired. Only available on
    /// semaphores created with [`Semaphore::new_sync`]: with asynchronous
    /// resumption a released permit may transiently live inside the CQS
    /// where `try_acquire` cannot see it, making the operation incorrect
    /// (paper, Appendix B, Figure 9).
    ///
    /// # Panics
    ///
    /// Panics if the semaphore uses asynchronous resumption.
    pub fn try_acquire(&self) -> bool {
        assert!(
            self.sync_mode,
            "try_acquire requires a semaphore created with Semaphore::new_sync"
        );
        let mut s = self.state.load(Ordering::SeqCst);
        while s > 0 {
            match self
                .state
                .compare_exchange(s, s - 1, Ordering::SeqCst, Ordering::SeqCst)
            {
                Ok(_) => return true,
                Err(actual) => s = actual,
            }
        }
        false
    }

    /// Attempts to take a *banked* permit without waiting, in any resume
    /// mode.
    ///
    /// This is the **weak** sibling of [`try_acquire`](Semaphore::try_acquire):
    /// it only CASes the state counter downward while it is positive, so it
    /// never blocks, never queues, and never takes a permit destined for a
    /// FIFO waiter (the counter is non-positive whenever waiters exist).
    /// The weakness is in asynchronous mode: a permit a concurrent
    /// `release` has already committed may transiently live *inside* the
    /// queue where this method cannot see it, so `false` does not prove the
    /// semaphore was exhausted at any single instant (the reason
    /// [`try_acquire`](Semaphore::try_acquire) demands synchronous
    /// resumption — paper, Appendix B, Figure 9). Sequentially the counter
    /// is exact and the weakness is unobservable. Sharded primitives use
    /// this as their local fast path and steal path.
    pub fn try_acquire_weak(&self) -> bool {
        let mut s = self.state.load(Ordering::SeqCst);
        while s > 0 {
            match self
                .state
                .compare_exchange(s, s - 1, Ordering::SeqCst, Ordering::SeqCst)
            {
                Ok(_) => {
                    cqs_watch::gauge!(self.cqs.watch_id(), "state", s - 1);
                    return true;
                }
                Err(actual) => s = actual,
            }
        }
        false
    }

    /// Like [`try_acquire_weak`](Semaphore::try_acquire_weak), but takes up
    /// to `max` banked permits in one CAS and returns how many it got.
    /// Sharded rebalancing uses this to reclaim a batch of credit from one
    /// shard's bank before handing it to another shard's waiters in a
    /// single batched traversal.
    pub fn try_acquire_many_weak(&self, max: usize) -> usize {
        if max == 0 {
            return 0;
        }
        let cap = i64::try_from(max).unwrap_or(i64::MAX);
        let mut s = self.state.load(Ordering::SeqCst);
        while s > 0 {
            let take = s.min(cap);
            match self
                .state
                .compare_exchange(s, s - take, Ordering::SeqCst, Ordering::SeqCst)
            {
                Ok(_) => {
                    cqs_watch::gauge!(self.cqs.watch_id(), "state", s - take);
                    return take as usize;
                }
                Err(actual) => s = actual,
            }
        }
        0
    }

    /// A snapshot of the number of currently queued waiters (zero if
    /// permits are available).
    pub fn waiting(&self) -> usize {
        (-self.state.load(Ordering::SeqCst)).max(0) as usize
    }

    /// Number of live queue segments backing this semaphore's waiter queue
    /// (diagnostics; the soak scenario tracks it to prove memory stays
    /// proportional to live waiters).
    pub fn live_segments(&self) -> usize {
        self.cqs.live_segments()
    }

    /// Closes the semaphore: every queued acquirer is woken with an error
    /// (its future reports [`Cancelled`]) and every subsequent
    /// [`acquire`](Semaphore::acquire) fails fast without queuing. Permits
    /// already handed out stay valid and may still be
    /// [`release`](Semaphore::release)d, so holders can finish their
    /// critical sections gracefully. Closing twice is a no-op.
    pub fn close(&self) {
        self.cqs.close();
    }

    /// Whether [`close`](Semaphore::close) was called.
    pub fn is_closed(&self) -> bool {
        self.cqs.is_closed()
    }

    /// Poisons the semaphore: marks the waiter queue poisoned and closes it
    /// (see [`close`](Semaphore::close)). Use when a permit holder crashed
    /// and the resource the permits guard may be inconsistent.
    pub fn poison(&self) {
        self.cqs.poison();
    }

    /// Whether the semaphore was poisoned — by [`poison`](Semaphore::poison)
    /// or by a panic escaping a batched release traversal. A poisoned
    /// semaphore is always also [closed](Semaphore::is_closed), so pending
    /// and subsequent [`acquire`](Semaphore::acquire)s fail with
    /// [`Cancelled`] rather than hanging.
    pub fn is_poisoned(&self) -> bool {
        self.cqs.is_poisoned()
    }

    /// Like [`release`](Semaphore::release), but refuses to push the number
    /// of available permits above the count the semaphore was created with.
    ///
    /// # Errors
    ///
    /// Returns [`ExcessRelease`] — and leaves the semaphore untouched — if
    /// all permits are already available, which means the caller releases
    /// a permit it never acquired.
    pub fn release_checked(&self) -> Result<(), ExcessRelease> {
        let mut s = self.state.load(Ordering::SeqCst);
        loop {
            if s >= self.permits as i64 {
                return Err(ExcessRelease);
            }
            match self
                .state
                .compare_exchange(s, s + 1, Ordering::SeqCst, Ordering::SeqCst)
            {
                Ok(_) => break,
                Err(actual) => s = actual,
            }
        }
        if s >= 0 {
            return Ok(());
        }
        // There was a waiter when we incremented; resume it, retrying
        // broken synchronous rendezvous like `release()` does: refund the
        // counter first (Listing 16), and resume again only while the
        // refunded value still shows waiters. The refund honours the same
        // cap as the entry increment — an unconditional `fetch_add` here
        // can race a lagging suspender's re-decrement and push `state`
        // permanently above `permits`.
        loop {
            if self.cqs.resume(()).is_ok() {
                return Ok(());
            }
            std::thread::yield_now();
            let mut s = self.state.load(Ordering::SeqCst);
            loop {
                if s >= self.permits as i64 {
                    // Every permit is already accounted for: the one this
                    // call committed was absorbed balancing the broken
                    // rendezvous (its suspender re-acquires via the fast
                    // path), so no waiter remains for us to serve.
                    return Ok(());
                }
                match self
                    .state
                    .compare_exchange(s, s + 1, Ordering::SeqCst, Ordering::SeqCst)
                {
                    Ok(_) => break,
                    Err(actual) => s = actual,
                }
            }
            if s >= 0 {
                return Ok(());
            }
        }
    }

    /// Returns a permit, resuming the first waiter if there is one.
    pub fn release(&self) {
        let _ = self.release_reporting();
    }

    /// Crate-internal sibling of [`release`](Semaphore::release) that
    /// reports where the permit went: `true` if it was banked in the
    /// free-permit counter, `false` if it was handed to a waiter. The
    /// sharded semaphore keys its rebalance accounting off this — a
    /// `waiting()` snapshot taken *before* the release cannot tell which
    /// path will be taken (a waiter the snapshot counted may cancel
    /// concurrently, turning the would-be handoff into a bank), but the
    /// release's own `fetch_add` can. Note that `false` only means the
    /// resume *committed*: a cancellation refusing the in-flight resume
    /// still re-banks the permit via `on_cancellation` — and when the
    /// resume delegated its value to the mid-flight canceller, that
    /// re-banking happens on the cancelling thread, possibly *after* this
    /// method returned. Wrappers that must react to the re-bank listen via
    /// the `on_refusal` hook instead of inspecting this return value.
    pub(crate) fn release_reporting(&self) -> bool {
        // Linearizability-history seam (cqs-check): a release is a
        // complete operation, so both edges are recorded here.
        cqs_chaos::record!(self as *const Self as u64, "sem.release", Invoke, 0);
        let banked = self.release_permit();
        cqs_chaos::record!(self as *const Self as u64, "sem.release", Response, 0);
        banked
    }

    fn release_permit(&self) -> bool {
        loop {
            let s = self.state.fetch_add(1, Ordering::SeqCst);
            cqs_watch::gauge!(self.cqs.watch_id(), "state", s + 1);
            // In asynchronous mode every increment releases exactly one
            // permit, so overshooting the cap proves an excess release. In
            // synchronous mode this same loop also performs the Listing-16
            // refund increments for broken rendezvous, which race with the
            // lagging suspender's re-decrement — the bound does not hold
            // per-increment there and asserting it fires on correct
            // programs.
            debug_assert!(
                self.sync_mode || s < self.permits as i64,
                "released more permits than were acquired"
            );
            if s >= 0 {
                return true;
            }
            // There is a waiter; try to resume it. With smart cancellation
            // and asynchronous resumption this never fails; in synchronous
            // mode a broken rendezvous makes us restart.
            if self.cqs.resume(()).is_ok() {
                return false;
            }
            // Synchronous mode: the rendezvous broke; give the lagging
            // suspender a chance to run before retrying.
            std::thread::yield_now();
        }
    }

    /// Returns `k` permits at once: one `fetch_add(k)` on the state word,
    /// and the waiters those permits uncover are resumed in a **single
    /// batched traversal** ([`Cqs::resume_n`]) whose wake-ups fire only
    /// after the sweep — the bulk analogue of calling
    /// [`release`](Semaphore::release) `k` times, minus `k − 1` counter
    /// round-trips. Used by `BlockingPool` teardown to hand every parked
    /// worker its shutdown permit at once.
    pub fn release_n(&self, k: usize) {
        let _ = self.release_n_reporting(k);
    }

    /// Crate-internal sibling of [`release_n`](Semaphore::release_n)
    /// reporting how many of the `k` permits were banked rather than
    /// handed to waiters (see [`release_reporting`](Semaphore::release_reporting)
    /// for why a pre-release `waiting()` snapshot cannot provide this).
    /// The count is exact in asynchronous mode; refused resumes re-bank
    /// through `on_cancellation` (possibly on the cancelling thread, after
    /// this returns) and are not counted — the `on_refusal` hook reports
    /// them.
    pub(crate) fn release_n_reporting(&self, k: usize) -> usize {
        if k == 0 {
            return 0;
        }
        let k = k as i64;
        let s = self.state.fetch_add(k, Ordering::SeqCst);
        cqs_watch::gauge!(self.cqs.watch_id(), "state", s + k);
        // See `release` for why the overshoot bound only holds in
        // asynchronous mode.
        debug_assert!(
            self.sync_mode || s + k <= self.permits as i64,
            "released more permits than were acquired"
        );
        // Exactly the increments that landed below zero belong to waiters;
        // the rest are banked as free permits.
        let waiters = (-s).clamp(0, k) as usize;
        let mut banked = k as usize - waiters;
        if waiters == 0 {
            return banked;
        }
        let failed = self.cqs.resume_n(std::iter::repeat_n((), waiters), waiters);
        debug_assert!(
            failed.is_empty() || self.sync_mode,
            "smart async resume cannot fail"
        );
        for _ in failed {
            // Synchronous mode: this token's rendezvous broke. `release`'s
            // own loop performs the Listing-16 refund increment and
            // retries, which is exactly the per-permit recovery we need.
            std::thread::yield_now();
            banked += usize::from(self.release_reporting());
        }
        banked
    }
}

/// RAII guard returned by [`Semaphore::acquire_blocking`]; releases the
/// permit when dropped.
#[derive(Debug)]
pub struct SemaphoreGuard<'a> {
    semaphore: &'a Semaphore,
}

impl Drop for SemaphoreGuard<'_> {
    fn drop(&mut self) {
        cqs_watch::released!(self.semaphore.cqs.watch_id());
        self.semaphore.release();
    }
}

/// Error of [`Semaphore::release_checked`]: the release would have pushed
/// the available-permit count above the configured maximum.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ExcessRelease;

impl std::fmt::Display for ExcessRelease {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("released a permit that was never acquired")
    }
}

impl std::error::Error for ExcessRelease {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::time::Duration;

    #[test]
    fn permits_are_counted() {
        let s = Semaphore::new(3);
        assert_eq!(s.permits(), 3);
        assert_eq!(s.available_permits(), 3);
        s.acquire().wait().unwrap();
        assert_eq!(s.available_permits(), 2);
        s.release();
        assert_eq!(s.available_permits(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one permit")]
    fn zero_permits_rejected() {
        let _ = Semaphore::new(0);
    }

    /// `release_n` splits its permits between parked waiters (one batched
    /// traversal) and the free-permit bank.
    #[test]
    fn release_n_serves_waiters_then_banks_the_rest() {
        let s = Semaphore::new(8);
        for _ in 0..8 {
            s.acquire().wait().unwrap();
        }
        let parked: Vec<_> = (0..3).map(|_| s.acquire()).collect();
        assert_eq!(s.available_permits(), 0);
        // 5 permits: 3 wake the parked waiters, 2 go to the bank.
        s.release_n(5);
        for f in parked {
            f.wait().unwrap();
        }
        assert_eq!(s.available_permits(), 2);
        s.release_n(0); // no-op
        assert_eq!(s.available_permits(), 2);
    }

    /// `release_n(k)` is observationally the same as `k` single releases,
    /// under concurrent acquirers. Releasers only return permits that were
    /// actually acquired (tracked through a credit counter), honouring the
    /// semaphore's cap contract, so acquirers routinely park and get woken
    /// by batched releases.
    #[test]
    fn release_n_conserves_permits_under_contention() {
        const PERMITS: usize = 8;
        const ACQUIRERS: usize = 4;
        const RELEASERS: usize = 4;
        const BATCH: usize = 4;
        const PER_ACQUIRER: usize = 1_200; // divisible by BATCH * RELEASERS
        let s = Arc::new(Semaphore::new(PERMITS));
        let credits = Arc::new(std::sync::atomic::AtomicI64::new(0));
        let mut joins = Vec::new();
        for _ in 0..ACQUIRERS {
            let s = Arc::clone(&s);
            let credits = Arc::clone(&credits);
            joins.push(std::thread::spawn(move || {
                for _ in 0..PER_ACQUIRER {
                    s.acquire().wait().unwrap();
                    credits.fetch_add(1, Ordering::SeqCst);
                }
            }));
        }
        let total = ACQUIRERS * PER_ACQUIRER;
        for _ in 0..RELEASERS {
            let s = Arc::clone(&s);
            let credits = Arc::clone(&credits);
            joins.push(std::thread::spawn(move || {
                for _ in 0..total / RELEASERS / BATCH {
                    loop {
                        let c = credits.load(Ordering::SeqCst);
                        if c >= BATCH as i64
                            && credits
                                .compare_exchange(
                                    c,
                                    c - BATCH as i64,
                                    Ordering::SeqCst,
                                    Ordering::SeqCst,
                                )
                                .is_ok()
                        {
                            break;
                        }
                        std::thread::yield_now();
                    }
                    s.release_n(BATCH);
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        // Every acquired permit was batch-released back: the bank is full.
        assert_eq!(s.available_permits(), PERMITS);
    }

    /// Deterministic replay of the synchronous-mode interleaving in which
    /// the Listing-16 refund must honour the permit cap.
    ///
    /// The schedule (permits = 1):
    ///
    /// 1. the only permit is held;
    /// 2. an acquirer applies its `fetch_sub` but lags before reaching
    ///    `cqs.suspend()` (simulated directly — the window is real but a
    ///    preemption there cannot be forced portably);
    /// 3. the holder's `release_checked()` commits its permit (`-1 -> 0`),
    ///    sees the waiter, and enters the synchronous rendezvous: it
    ///    publishes the value and spins for `TAKEN`. A huge `spin_limit`
    ///    parks it in that window for tens of milliseconds, making the
    ///    remaining interleaving deterministic;
    /// 4. an *excess* `release_checked()` arrives during the transient dip.
    ///    The entry cap cannot attribute the in-flight rendezvous, so the
    ///    call sneaks through with `Ok` (`0 -> 1`) — unavoidable in sync
    ///    mode, and harmless *if* the refund below respects the cap;
    /// 5. the spin expires, the rendezvous breaks, and the releaser refunds
    ///    the broken waiter's coming re-decrement. An unconditional
    ///    `fetch_add` here pushes `state` to `permits + 1` permanently: the
    ///    sneaked excess of step 4 and the refund both stack on top of the
    ///    single real permit. The capped refund absorbs the excess instead.
    ///
    /// Before the fix this test fails with `available_permits() == 1` while
    /// the permit is held (and, with the then-unconditional debug
    /// assertion, the innocent holder's `release()` panicked — the spurious
    /// fire this regression test pins down).
    #[test]
    fn sync_mode_refund_honours_permit_cap() {
        // Roughly 50-500 ms of spinning on current hardware: far above the
        // few milliseconds the main thread needs for steps 4-5.
        const SPIN: usize = 50_000_000;
        let s = Arc::new(Semaphore::new_sync_with_spin(1, SPIN));
        assert!(s.try_acquire(), "the single permit must be free");

        // Step 2: the lagging acquirer's decrement, pre-suspension.
        s.state.fetch_sub(1, Ordering::SeqCst);

        // Step 3: release the held permit; the releaser parks inside the
        // rendezvous window.
        let releaser = {
            let s = Arc::clone(&s);
            std::thread::spawn(move || {
                s.release_checked()
                    .expect("releasing a genuinely held permit must succeed");
            })
        };
        // The entry increment (-1 -> 0) is the observable signal that the
        // releaser is about to publish; give it a moment to start spinning.
        while s.state.load(Ordering::SeqCst) < 0 {
            std::thread::yield_now();
        }
        std::thread::sleep(Duration::from_millis(5));

        // Step 4: the excess release that sneaks through the entry cap
        // during the dip. Its result is unspecified mid-rendezvous; the
        // counter invariant below is what matters.
        let _ = s.release_checked();

        // Step 5: the rendezvous breaks and the refund is applied.
        releaser.join().unwrap();

        // The lagging acquirer retries (a broken rendezvous re-runs the
        // acquire loop); it must find exactly one permit.
        let waiter = s.acquire();
        assert_eq!(waiter.wait(), Ok(()));
        assert_eq!(
            s.available_permits(),
            0,
            "permit counter corrupted: a permit is held, none may be free"
        );
        s.release(); // must not trip the excess-release debug assertion
        assert_eq!(s.available_permits(), 1);
        assert_eq!(s.release_checked(), Err(ExcessRelease));
    }

    #[test]
    fn acquire_suspends_when_exhausted() {
        let s = Arc::new(Semaphore::new(1));
        s.acquire().wait().unwrap();
        let mut f = s.acquire();
        assert!(!f.is_immediate());
        assert_eq!(f.try_get(), cqs_core::FutureState::Pending);
        s.release();
        assert_eq!(f.wait(), Ok(()));
    }

    #[test]
    fn fifo_handoff() {
        let s = Arc::new(Semaphore::new(1));
        s.acquire().wait().unwrap();
        let waiters: Vec<_> = (0..4).map(|_| s.acquire()).collect();
        let order = Arc::new(AtomicUsize::new(0));
        let mut joins = Vec::new();
        for (i, f) in waiters.into_iter().enumerate() {
            let order = Arc::clone(&order);
            let s = Arc::clone(&s);
            joins.push(std::thread::spawn(move || {
                f.wait().unwrap();
                let at = order.fetch_add(1, Ordering::SeqCst);
                assert_eq!(at, i, "FIFO violated: waiter {i} resumed {at}th");
                s.release();
            }));
        }
        s.release();
        for j in joins {
            j.join().unwrap();
        }
    }

    #[test]
    fn cancellation_returns_waiter_slot() {
        let s = Arc::new(Semaphore::new(1));
        s.acquire().wait().unwrap();
        let f1 = s.acquire();
        let f2 = s.acquire();
        assert!(f1.cancel());
        // f2 is now first in line.
        s.release();
        assert_eq!(f2.wait(), Ok(()));
        s.release();
        assert_eq!(s.available_permits(), 1);
    }

    #[test]
    fn cancel_last_waiter_refuses_release() {
        let s = Arc::new(Semaphore::new(1));
        s.acquire().wait().unwrap();
        let f = s.acquire();
        // Race-free sequential version: release first (permit destined for
        // f), then cancel. The cancellation must refuse the resume and keep
        // the permit.
        let s2 = Arc::clone(&s);
        let releaser = std::thread::spawn(move || s2.release());
        if !f.cancel() {
            // The release resumed the waiter before the cancellation landed;
            // the future owns the permit, so give it back.
            f.wait().unwrap();
            s.release();
        }
        releaser.join().unwrap();
        // However the race resolves, exactly one permit must exist.
        std::thread::sleep(Duration::from_millis(10));
        assert_eq!(s.available_permits(), 1);
    }

    #[test]
    fn try_acquire_requires_sync_mode() {
        let s = Semaphore::new_sync(2);
        assert!(s.try_acquire());
        assert!(s.try_acquire());
        assert!(!s.try_acquire());
        s.release();
        assert!(s.try_acquire());
    }

    #[test]
    #[should_panic(expected = "try_acquire requires")]
    fn try_acquire_panics_in_async_mode() {
        let s = Semaphore::new(1);
        let _ = s.try_acquire();
    }

    #[test]
    fn sync_mode_acquire_release_roundtrip() {
        let s = Arc::new(Semaphore::new_sync(2));
        let mut joins = Vec::new();
        let inside = Arc::new(AtomicUsize::new(0));
        for _ in 0..8 {
            let s = Arc::clone(&s);
            let inside = Arc::clone(&inside);
            joins.push(std::thread::spawn(move || {
                for _ in 0..500 {
                    s.acquire().wait().unwrap();
                    let now = inside.fetch_add(1, Ordering::SeqCst) + 1;
                    assert!(now <= 2, "semaphore admitted {now} > 2 holders");
                    inside.fetch_sub(1, Ordering::SeqCst);
                    s.release();
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(s.available_permits(), 2);
    }

    /// Regression test: `release_checked()`'s retry path used to refund a
    /// broken synchronous rendezvous with an uncapped `fetch_add`, which
    /// could race a lagging suspender's re-decrement and push `state`
    /// permanently above `permits` — after which innocent `release()`
    /// calls tripped their excess-release debug assertion. A spin limit of
    /// zero makes every release that overtakes its suspender break the
    /// rendezvous, so the retry protocol runs constantly.
    #[test]
    fn sync_mode_broken_rendezvous_storm_respects_permit_cap() {
        const PERMITS: usize = 2;
        const THREADS: usize = 4;
        const OPS: usize = 2_000;
        let s = Arc::new(Semaphore::new_sync_with_spin(PERMITS, 0));
        let inside = Arc::new(AtomicUsize::new(0));
        let mut joins = Vec::new();
        for t in 0..THREADS {
            let s = Arc::clone(&s);
            let inside = Arc::clone(&inside);
            joins.push(std::thread::spawn(move || {
                for i in 0..OPS {
                    s.acquire().wait().unwrap();
                    let now = inside.fetch_add(1, Ordering::SeqCst) + 1;
                    assert!(now <= PERMITS, "semaphore admitted {now} > {PERMITS}");
                    inside.fetch_sub(1, Ordering::SeqCst);
                    // Alternate the two release flavours: the corruption
                    // needs release_checked's retry racing other releases.
                    if (i + t) % 2 == 0 {
                        s.release_checked()
                            .expect("a held permit is never an excess release");
                    } else {
                        s.release();
                    }
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        // Quiescence: exactly the configured permits, never more.
        assert_eq!(
            s.available_permits(),
            PERMITS,
            "permit counter corrupted by broken-rendezvous refunds"
        );
        assert_eq!(s.release_checked(), Err(ExcessRelease));
    }

    /// Same storm on a single permit (mutex degeneration), all releases
    /// through `release_checked()` — the tightest window for the capped
    /// refund, since one broken rendezvous is enough to reach the cap.
    #[test]
    fn sync_mode_release_checked_storm_single_permit() {
        const THREADS: usize = 4;
        const OPS: usize = 2_000;
        let s = Arc::new(Semaphore::new_sync_with_spin(1, 0));
        let inside = Arc::new(AtomicUsize::new(0));
        let mut joins = Vec::new();
        for _ in 0..THREADS {
            let s = Arc::clone(&s);
            let inside = Arc::clone(&inside);
            joins.push(std::thread::spawn(move || {
                for _ in 0..OPS {
                    s.acquire().wait().unwrap();
                    let now = inside.fetch_add(1, Ordering::SeqCst) + 1;
                    assert!(now <= 1, "mutual exclusion violated: {now} holders");
                    inside.fetch_sub(1, Ordering::SeqCst);
                    s.release_checked()
                        .expect("a held permit is never an excess release");
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(s.available_permits(), 1);
    }

    #[test]
    fn guard_releases_on_drop() {
        let s = Semaphore::new(1);
        {
            let _g = s.acquire_blocking().unwrap();
            assert_eq!(s.available_permits(), 0);
        }
        assert_eq!(s.available_permits(), 1);
    }

    /// The paper's key invariant: never more than K holders, even under a
    /// storm of cancellations racing with releases.
    #[test]
    fn mutual_exclusion_under_cancellation_storm() {
        const K: usize = 2;
        const THREADS: usize = 8;
        const OPS: usize = 1_000;
        let s = Arc::new(Semaphore::new(K));
        let inside = Arc::new(AtomicUsize::new(0));
        let mut joins = Vec::new();
        for t in 0..THREADS {
            let s = Arc::clone(&s);
            let inside = Arc::clone(&inside);
            joins.push(std::thread::spawn(move || {
                for i in 0..OPS {
                    let f = s.acquire();
                    // Occasionally try to abort the acquisition.
                    if (i + t) % 5 == 0 && f.cancel() {
                        continue;
                    }
                    f.wait().unwrap();
                    let now = inside.fetch_add(1, Ordering::SeqCst) + 1;
                    assert!(now <= K, "semaphore admitted {now} > {K} holders");
                    inside.fetch_sub(1, Ordering::SeqCst);
                    s.release();
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        // All permits must be back.
        for _ in 0..K {
            assert!(s.acquire().wait().is_ok());
        }
    }
}

#[cfg(test)]
mod close_tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn close_wakes_queued_waiters_with_error() {
        let s = Arc::new(Semaphore::new(1));
        s.acquire().wait().unwrap();
        let waiters: Vec<_> = (0..4).map(|_| s.acquire()).collect();
        let joins: Vec<_> = waiters
            .into_iter()
            .map(|f| std::thread::spawn(move || f.wait()))
            .collect();
        // Give the waiters a moment to park, then close.
        std::thread::sleep(Duration::from_millis(20));
        s.close();
        for j in joins {
            assert_eq!(j.join().unwrap(), Err(Cancelled));
        }
    }

    #[test]
    fn acquire_after_close_fails_fast() {
        let s = Semaphore::new(2);
        assert!(!s.is_closed());
        s.close();
        assert!(s.is_closed());
        assert_eq!(s.acquire().wait(), Err(Cancelled));
        assert!(s.acquire_blocking().is_err());
        // `state` was never touched: closing loses no permits.
        assert_eq!(s.available_permits(), 2);
    }

    #[test]
    fn holders_can_release_after_close() {
        let s = Semaphore::new(2);
        let g = s.acquire_blocking().unwrap();
        s.close();
        drop(g);
        assert_eq!(s.available_permits(), 2);
        s.close(); // double close is a no-op
    }

    #[test]
    fn close_races_with_acquirers() {
        for _ in 0..50 {
            let s = Arc::new(Semaphore::new(1));
            s.acquire().wait().unwrap();
            let mut joins = Vec::new();
            for _ in 0..4 {
                let s = Arc::clone(&s);
                joins.push(std::thread::spawn(move || s.acquire().wait()));
            }
            let closer = {
                let s = Arc::clone(&s);
                std::thread::spawn(move || s.close())
            };
            s.release();
            closer.join().unwrap();
            // Every acquirer either got the released permit or an error;
            // none may park forever (join would hang).
            let granted = joins
                .into_iter()
                .map(|j| j.join().unwrap())
                .filter(|r| r.is_ok())
                .count();
            assert!(granted <= 1, "one permit granted to {granted} acquirers");
        }
    }

    #[test]
    fn release_checked_rejects_excess() {
        let s = Semaphore::new(2);
        assert_eq!(s.release_checked(), Err(ExcessRelease));
        s.acquire().wait().unwrap();
        assert_eq!(s.release_checked(), Ok(()));
        assert_eq!(s.release_checked(), Err(ExcessRelease));
        assert_eq!(s.available_permits(), 2);
    }

    #[test]
    fn release_checked_resumes_waiters() {
        let s = Arc::new(Semaphore::new(1));
        s.acquire().wait().unwrap();
        let f = s.acquire();
        assert_eq!(s.release_checked(), Ok(()));
        assert_eq!(f.wait(), Ok(()));
        s.release();
        assert_eq!(s.available_permits(), 1);
    }
}

#[cfg(test)]
mod timeout_tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn acquire_timeout_expires_and_recovers() {
        let s = Semaphore::new(1);
        let held = s.acquire_blocking().unwrap();
        assert!(s.acquire_timeout(Duration::from_millis(10)).is_err());
        drop(held);
        let g = s.acquire_timeout(Duration::from_millis(100)).unwrap();
        drop(g);
        assert_eq!(s.available_permits(), 1);
    }
}
