#![warn(missing_docs)]

//! # `cqs-exec` — a lightweight coroutine executor
//!
//! The CQS paper's practical motivation is synchronization for *coroutines*:
//! lightweight tasks multiplexed over a small thread pool, where suspension
//! must not block the carrier thread and where cancellations are frequent.
//! This crate supplies the minimal executor needed to reproduce those
//! experiments (Fig. 13: thousands of coroutines contending on a mutex over
//! a fixed-size scheduler) — and to let library users actually consume
//! `CqsFuture`s without parking threads.
//!
//! A [`Coroutine`] is a resumable state machine: the executor calls
//! [`Coroutine::step`] until it returns [`CoroStep::Done`]. When a step
//! would block on a [`cqs_future::CqsFuture`], the coroutine arranges its
//! own wake-up with [`CoroWaker::wake_on_ready`] and returns
//! [`CoroStep::Pending`]; the carrier thread immediately picks up another
//! coroutine.
//!
//! # Example
//!
//! ```
//! use cqs_exec::{CoroStep, CoroWaker, Executor, FnCoroutine};
//!
//! let executor = Executor::new(2);
//! for i in 0..8 {
//!     executor.spawn(FnCoroutine::new(move |_waker| {
//!         // ... do some work for task i ...
//!         let _ = i;
//!         CoroStep::Done
//!     }));
//! }
//! executor.wait_idle();
//! ```

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use cqs_future::CqsFuture;

/// Result of one [`Coroutine::step`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoroStep {
    /// The coroutine finished; it will not run again.
    Done,
    /// The coroutine yields; re-enqueue it immediately.
    Yield,
    /// The coroutine suspended; it registered a wake-up (via
    /// [`CoroWaker::wake_on_ready`] or [`CoroWaker::wake`]) that will
    /// re-enqueue it.
    Pending,
}

/// A resumable task. Implementations typically keep an explicit state
/// machine: which phase the task is in and, when suspended, the future it
/// is waiting on.
pub trait Coroutine: Send + 'static {
    /// Runs until completion, a yield point, or a suspension.
    fn step(&mut self, waker: &CoroWaker) -> CoroStep;
}

/// Adapter turning a closure into a [`Coroutine`]: the closure is invoked
/// on every step.
pub struct FnCoroutine<F>(F);

impl<F: FnMut(&CoroWaker) -> CoroStep + Send + 'static> FnCoroutine<F> {
    /// Wraps `f` as a coroutine.
    pub fn new(f: F) -> Self {
        FnCoroutine(f)
    }
}

impl<F: FnMut(&CoroWaker) -> CoroStep + Send + 'static> Coroutine for FnCoroutine<F> {
    fn step(&mut self, waker: &CoroWaker) -> CoroStep {
        (self.0)(waker)
    }
}

type BoxedCoroutine = Box<dyn Coroutine>;

#[derive(Default)]
struct ParkCell {
    coroutine: Option<BoxedCoroutine>,
    /// Set if the wake-up fired before the carrier parked the coroutine.
    woken_early: bool,
}

/// Re-enqueues a suspended coroutine. Each step invocation gets a fresh
/// waker; it is cheap to clone into wake-up callbacks.
#[derive(Clone)]
pub struct CoroWaker {
    shared: Arc<ExecShared>,
    cell: Arc<Mutex<ParkCell>>,
}

impl CoroWaker {
    /// Schedules the suspended coroutine to run again. Idempotent; callable
    /// from any thread, including before the suspending step has returned.
    pub fn wake(&self) {
        let parked = {
            let mut cell = self.cell.lock().unwrap();
            match cell.coroutine.take() {
                Some(c) => Some(c),
                None => {
                    cell.woken_early = true;
                    None
                }
            }
        };
        if let Some(c) = parked {
            self.shared.enqueue(c);
        }
    }

    /// Convenience: wires this waker to fire when `future` completes or is
    /// cancelled, then the caller returns [`CoroStep::Pending`].
    pub fn wake_on_ready<T>(&self, future: &CqsFuture<T>) {
        let waker = self.clone();
        future.on_ready(move || waker.wake());
    }
}

impl std::fmt::Debug for CoroWaker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("CoroWaker")
    }
}

/// One or more coroutines panicked since the last check.
///
/// Returned by [`Executor::wait_idle_checked`]; carries the panic payloads
/// (rendered to strings) so the failure is attributable instead of silent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoroutinePanics {
    /// The captured panic payloads, oldest first.
    pub payloads: Vec<String>,
}

impl std::fmt::Display for CoroutinePanics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} coroutine(s) panicked", self.payloads.len())?;
        if let Some(first) = self.payloads.first() {
            write!(f, "; first payload: {first}")?;
        }
        Ok(())
    }
}

impl std::error::Error for CoroutinePanics {}

/// Renders a `catch_unwind` payload the way the default panic hook does.
fn describe_panic(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "Box<dyn Any>".to_string()
    }
}

struct ExecShared {
    queue: Mutex<VecDeque<BoxedCoroutine>>,
    work_available: Condvar,
    /// Coroutines spawned and not yet Done.
    live: AtomicUsize,
    idle: Condvar,
    idle_lock: Mutex<()>,
    shutdown: AtomicBool,
    /// Total coroutine panics over the executor's lifetime.
    panic_count: AtomicUsize,
    /// Panic payloads not yet drained by `wait_idle_checked`.
    panics: Mutex<Vec<String>>,
    /// Watchdog id for this executor's gauges; 0 when `watch` is off.
    #[cfg_attr(not(feature = "watch"), allow(dead_code))]
    watch_id: u64,
}

impl ExecShared {
    fn enqueue(&self, c: BoxedCoroutine) {
        self.queue.lock().unwrap().push_back(c);
        self.work_available.notify_one();
    }

    fn finish_one(&self) {
        let previous = self.live.fetch_sub(1, Ordering::SeqCst);
        cqs_watch::gauge!(self.watch_id, "live", previous as i64 - 1);
        if previous == 1 {
            let _g = self.idle_lock.lock().unwrap();
            self.idle.notify_all();
        }
    }

    fn record_panic(&self, payload: &(dyn std::any::Any + Send)) {
        let message = describe_panic(payload);
        let _total = self.panic_count.fetch_add(1, Ordering::SeqCst) + 1;
        eprintln!("cqs-exec: coroutine panicked: {message}");
        cqs_watch::gauge!(self.watch_id, "panics", _total as i64);
        self.panics.lock().unwrap().push(message);
    }
}

/// A fixed-size thread pool running [`Coroutine`]s (see crate docs).
pub struct Executor {
    shared: Arc<ExecShared>,
    workers: Vec<JoinHandle<()>>,
}

impl Executor {
    /// Starts an executor with `threads` carrier threads.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn new(threads: usize) -> Self {
        assert!(threads > 0, "an executor needs at least one thread");
        let shared = Arc::new(ExecShared {
            queue: Mutex::new(VecDeque::new()),
            work_available: Condvar::new(),
            live: AtomicUsize::new(0),
            idle: Condvar::new(),
            idle_lock: Mutex::new(()),
            shutdown: AtomicBool::new(false),
            panic_count: AtomicUsize::new(0),
            panics: Mutex::new(Vec::new()),
            watch_id: cqs_watch::next_primitive_id("exec"),
        });
        let workers = (0..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("cqs-exec-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("failed to spawn executor worker")
            })
            .collect();
        Executor { shared, workers }
    }

    /// Submits a coroutine for execution.
    pub fn spawn<C: Coroutine>(&self, coroutine: C) {
        let _previous = self.shared.live.fetch_add(1, Ordering::SeqCst);
        cqs_watch::gauge!(self.shared.watch_id, "live", _previous as i64 + 1);
        self.shared.enqueue(Box::new(coroutine));
    }

    /// Blocks until every spawned coroutine has finished. Coroutine panics
    /// do not fail this call (matching historical behaviour) but are never
    /// silent: each is logged to stderr when caught and counted in
    /// [`panic_count`](Self::panic_count); use
    /// [`wait_idle_checked`](Self::wait_idle_checked) to surface them as an
    /// error.
    pub fn wait_idle(&self) {
        let mut g = self.shared.idle_lock.lock().unwrap();
        while self.shared.live.load(Ordering::SeqCst) != 0 {
            g = self.shared.idle.wait(g).unwrap();
        }
    }

    /// Like [`wait_idle`](Self::wait_idle), but returns an error carrying
    /// the captured payloads if any coroutine panicked since the last
    /// `wait_idle_checked` call. Draining is destructive: a returned
    /// [`CoroutinePanics`] will not be reported again (the lifetime
    /// [`panic_count`](Self::panic_count) is unaffected).
    ///
    /// # Errors
    ///
    /// Returns [`CoroutinePanics`] with the undrained panic payloads.
    pub fn wait_idle_checked(&self) -> Result<(), CoroutinePanics> {
        self.wait_idle();
        let payloads: Vec<String> = self.shared.panics.lock().unwrap().drain(..).collect();
        if payloads.is_empty() {
            Ok(())
        } else {
            Err(CoroutinePanics { payloads })
        }
    }

    /// The number of coroutines not yet finished.
    pub fn live_count(&self) -> usize {
        self.shared.live.load(Ordering::SeqCst)
    }

    /// Total coroutine panics caught over this executor's lifetime.
    pub fn panic_count(&self) -> usize {
        self.shared.panic_count.load(Ordering::SeqCst)
    }
}

fn worker_loop(shared: &Arc<ExecShared>) {
    loop {
        let coroutine = {
            let mut queue = shared.queue.lock().unwrap();
            loop {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                if let Some(c) = queue.pop_front() {
                    break c;
                }
                queue = shared.work_available.wait(queue).unwrap();
            }
        };
        run_one(shared, coroutine);
    }
}

fn run_one(shared: &Arc<ExecShared>, mut coroutine: BoxedCoroutine) {
    loop {
        let waker = CoroWaker {
            shared: Arc::clone(shared),
            cell: Arc::new(Mutex::new(ParkCell::default())),
        };
        let step =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| coroutine.step(&waker)));
        let step = match step {
            Ok(step) => step,
            Err(payload) => {
                // A panicking coroutine counts as finished; the carrier
                // thread survives and keeps serving other coroutines. The
                // payload is logged and kept for `wait_idle_checked`.
                shared.record_panic(payload.as_ref());
                shared.finish_one();
                return;
            }
        };
        match step {
            CoroStep::Done => {
                shared.finish_one();
                return;
            }
            CoroStep::Yield => {
                shared.enqueue(coroutine);
                return;
            }
            CoroStep::Pending => {
                let mut cell = waker.cell.lock().unwrap();
                if cell.woken_early {
                    // The wake-up raced ahead of us: keep running.
                    cell.woken_early = false;
                    drop(cell);
                    continue;
                }
                cell.coroutine = Some(coroutine);
                return;
            }
        }
    }
}

impl Drop for Executor {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Wake all workers so they observe the flag.
        {
            let _q = self.shared.queue.lock().unwrap();
            self.shared.work_available.notify_all();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl std::fmt::Debug for Executor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Executor")
            .field("threads", &self.workers.len())
            .field("live", &self.live_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqs_future::Request;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn runs_simple_tasks() {
        let executor = Executor::new(4);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..100 {
            let counter = Arc::clone(&counter);
            executor.spawn(FnCoroutine::new(move |_| {
                counter.fetch_add(1, Ordering::SeqCst);
                CoroStep::Done
            }));
        }
        executor.wait_idle();
        assert_eq!(counter.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn yielding_coroutine_runs_repeatedly() {
        let executor = Executor::new(2);
        let counter = Arc::new(AtomicUsize::new(0));
        let c2 = Arc::clone(&counter);
        let mut remaining = 10;
        executor.spawn(FnCoroutine::new(move |_| {
            c2.fetch_add(1, Ordering::SeqCst);
            remaining -= 1;
            if remaining == 0 {
                CoroStep::Done
            } else {
                CoroStep::Yield
            }
        }));
        executor.wait_idle();
        assert_eq!(counter.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn suspension_and_wakeup() {
        let executor = Executor::new(2);
        let request: Arc<Request<u64>> = Arc::new(Request::new());
        let result = Arc::new(AtomicUsize::new(0));

        let mut future = Some(CqsFuture::suspended(Arc::clone(&request)));
        let r2 = Arc::clone(&result);
        executor.spawn(FnCoroutine::new(move |waker| {
            let f = future.as_mut().expect("still waiting");
            match f.try_get() {
                cqs_future::FutureState::Ready(v) => {
                    r2.store(v as usize, Ordering::SeqCst);
                    CoroStep::Done
                }
                cqs_future::FutureState::Pending => {
                    waker.wake_on_ready(f);
                    CoroStep::Pending
                }
                cqs_future::FutureState::Cancelled => unreachable!(),
            }
        }));

        std::thread::sleep(std::time::Duration::from_millis(30));
        assert_eq!(executor.live_count(), 1, "coroutine must be suspended");
        request.complete(55).unwrap();
        executor.wait_idle();
        assert_eq!(result.load(Ordering::SeqCst), 55);
    }

    #[test]
    fn wake_before_park_is_not_lost() {
        // A future that is completed *during* the step, so the wake fires
        // before the carrier parks the coroutine.
        let executor = Executor::new(1);
        let done = Arc::new(AtomicUsize::new(0));
        let d2 = Arc::clone(&done);
        let mut state = 0;
        executor.spawn(FnCoroutine::new(move |waker| {
            if state == 0 {
                state = 1;
                let f = CqsFuture::immediate(1u32); // already ready
                waker.wake_on_ready(&f); // fires immediately
                CoroStep::Pending
            } else {
                d2.fetch_add(1, Ordering::SeqCst);
                CoroStep::Done
            }
        }));
        executor.wait_idle();
        assert_eq!(done.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn many_coroutines_many_threads() {
        let executor = Executor::new(4);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..1000 {
            let counter = Arc::clone(&counter);
            let mut steps = 3;
            executor.spawn(FnCoroutine::new(move |_| {
                counter.fetch_add(1, Ordering::SeqCst);
                steps -= 1;
                if steps == 0 {
                    CoroStep::Done
                } else {
                    CoroStep::Yield
                }
            }));
        }
        executor.wait_idle();
        assert_eq!(counter.load(Ordering::SeqCst), 3000);
    }

    #[test]
    fn drop_shuts_down_workers() {
        let executor = Executor::new(3);
        executor.spawn(FnCoroutine::new(|_| CoroStep::Done));
        executor.wait_idle();
        drop(executor); // must not hang
    }
}

#[cfg(test)]
mod panic_tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn panicking_coroutine_does_not_kill_the_executor() {
        let executor = Executor::new(1);
        executor.spawn(FnCoroutine::new(|_| panic!("boom")));
        executor.wait_idle();
        // The single worker must still be alive and able to run tasks.
        let ran = Arc::new(AtomicUsize::new(0));
        let r2 = Arc::clone(&ran);
        executor.spawn(FnCoroutine::new(move |_| {
            r2.fetch_add(1, Ordering::SeqCst);
            CoroStep::Done
        }));
        executor.wait_idle();
        assert_eq!(ran.load(Ordering::SeqCst), 1);
        assert_eq!(executor.panic_count(), 1);
    }

    #[test]
    fn wait_idle_checked_surfaces_payloads_once() {
        let executor = Executor::new(2);
        executor.spawn(FnCoroutine::new(|_| panic!("first failure")));
        executor.spawn(FnCoroutine::new(|_| {
            panic!("code {}", 42); // formatted payload → String
        }));
        let err = executor.wait_idle_checked().unwrap_err();
        assert_eq!(err.payloads.len(), 2);
        assert!(err.payloads.contains(&"first failure".to_string()));
        assert!(err.payloads.contains(&"code 42".to_string()));
        assert!(err.to_string().contains("2 coroutine(s) panicked"));
        assert_eq!(executor.panic_count(), 2);
        // Drained: a second check is clean, the lifetime counter is not.
        executor.wait_idle_checked().unwrap();
        assert_eq!(executor.panic_count(), 2);
    }

    #[test]
    fn wait_idle_checked_ok_when_nothing_panicked() {
        let executor = Executor::new(1);
        executor.spawn(FnCoroutine::new(|_| CoroStep::Done));
        executor.wait_idle_checked().unwrap();
        assert_eq!(executor.panic_count(), 0);
    }
}

#[cfg(test)]
mod order_tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// A single-threaded executor runs ready coroutines in FIFO spawn order.
    #[test]
    fn single_worker_runs_fifo() {
        let executor = Executor::new(1);
        let log = Arc::new(Mutex::new(Vec::new()));
        // Occupy the worker so spawns below queue up deterministically.
        let gate = Arc::new(AtomicUsize::new(0));
        let g2 = Arc::clone(&gate);
        executor.spawn(FnCoroutine::new(move |_| {
            if g2.load(Ordering::SeqCst) == 0 {
                std::thread::yield_now();
                CoroStep::Yield
            } else {
                CoroStep::Done
            }
        }));
        for i in 0..5 {
            let log = Arc::clone(&log);
            executor.spawn(FnCoroutine::new(move |_| {
                log.lock().unwrap().push(i);
                CoroStep::Done
            }));
        }
        gate.store(1, Ordering::SeqCst);
        executor.wait_idle();
        // The gate coroutine yields between each, so the five tasks ran in
        // spawn order interleaved with it.
        assert_eq!(*log.lock().unwrap(), vec![0, 1, 2, 3, 4]);
    }

    /// `wait_idle` returns immediately when nothing was spawned.
    #[test]
    fn wait_idle_on_empty_executor() {
        let executor = Executor::new(2);
        executor.wait_idle();
        assert_eq!(executor.live_count(), 0);
    }

    /// Coroutines outlive bursts of idleness: spawn, drain, spawn again.
    #[test]
    fn multiple_idle_cycles() {
        let executor = Executor::new(2);
        let count = Arc::new(AtomicUsize::new(0));
        for _round in 0..5 {
            for _ in 0..20 {
                let count = Arc::clone(&count);
                executor.spawn(FnCoroutine::new(move |_| {
                    count.fetch_add(1, Ordering::SeqCst);
                    CoroStep::Done
                }));
            }
            executor.wait_idle();
        }
        assert_eq!(count.load(Ordering::SeqCst), 100);
    }
}
