//! A Wing–Gong linearizability checker.
//!
//! Takes a concurrent operation history — invoke/response event pairs
//! recorded through the `cqs_chaos::record!` seam during a chaos storm —
//! and searches for a *linearization*: a sequential order of the completed
//! operations that (a) a sequential reference model ([`LinModel`]) accepts
//! with exactly the observed results and (b) respects real time (if
//! operation A responded before operation B was invoked, A comes first).
//!
//! The search is the classical Wing–Gong depth-first enumeration of
//! minimal operations, with the Lowe-style memoization refinement: a
//! (linearized-set, model-state) pair that already failed is never
//! re-explored, which keeps the storm-sized histories (~100–200 ops)
//! tractable.

use std::collections::HashSet;
use std::fmt;
use std::hash::Hash;

use cqs_chaos::{OpEvent, OpPhase};

/// A sequential reference state machine for the checker.
///
/// `step` consumes a *completed* operation together with its observed
/// result and returns the successor state, or `None` when the observed
/// result is impossible in this state (the candidate linearization order
/// is wrong there).
pub trait LinModel: Clone + Eq + Hash {
    /// Applies `op`; `None` means the op's observed result is illegal in
    /// this state.
    fn step(&self, op: &Operation) -> Option<Self>;
}

/// A completed operation: one invoke/response pair from the event log.
#[derive(Debug, Clone)]
pub struct Operation {
    /// Recording thread ordinal.
    pub thread: u64,
    /// Primitive instance the operation targets.
    pub instance: u64,
    /// Operation name (shared with the model, e.g. `"sem.acquire"`).
    pub op: &'static str,
    /// Payload recorded at the invoke edge (e.g. the element a put
    /// carries).
    pub invoke_value: u64,
    /// Payload recorded at the response edge (e.g. the element a take
    /// received, or [`RESP_CANCELLED`][crate::models::RESP_CANCELLED]).
    pub response_value: u64,
    /// Global sequence stamp of the invoke edge.
    pub invoked: u64,
    /// Global sequence stamp of the response edge.
    pub responded: u64,
}

/// Why a history could not be turned into operations or linearized.
#[derive(Debug, PartialEq, Eq)]
pub enum LinError {
    /// An invoke had no matching response on its thread (or vice versa);
    /// the recording harness must close every operation it opens.
    UnbalancedHistory {
        /// The thread with the dangling event.
        thread: u64,
        /// The op name involved.
        op: String,
    },
    /// No valid linearization exists: the history is not linearizable
    /// with respect to the model.
    NotLinearizable {
        /// Distinct search states visited before concluding.
        states_explored: usize,
        /// Number of operations in the history.
        operations: usize,
    },
}

impl fmt::Display for LinError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinError::UnbalancedHistory { thread, op } => {
                write!(
                    f,
                    "unbalanced history: dangling `{op}` event on thread {thread}"
                )
            }
            LinError::NotLinearizable {
                states_explored,
                operations,
            } => write!(
                f,
                "history of {operations} operations is NOT linearizable \
                 ({states_explored} search states explored)"
            ),
        }
    }
}

/// Pairs a raw event log (already filtered to one primitive instance)
/// into completed [`Operation`]s.
///
/// Events must be sequence-ordered (as [`cqs_chaos::take_history`]
/// returns them). Each thread is sequential — its events alternate
/// invoke/response for one open operation at a time, which is exactly how
/// the recording seam is used (a storm worker finishes or cancels its
/// pending future, records the response, then moves on).
pub fn pair_history(events: &[OpEvent]) -> Result<Vec<Operation>, LinError> {
    // Open operation per thread: (index into `ops`, op name).
    let mut open: Vec<(u64, usize)> = Vec::new();
    let mut ops: Vec<Operation> = Vec::new();
    for event in events {
        match event.phase {
            OpPhase::Invoke => {
                if open.iter().any(|(t, _)| *t == event.thread) {
                    return Err(LinError::UnbalancedHistory {
                        thread: event.thread,
                        op: event.op.to_string(),
                    });
                }
                open.push((event.thread, ops.len()));
                ops.push(Operation {
                    thread: event.thread,
                    instance: event.instance,
                    op: event.op,
                    invoke_value: event.value,
                    response_value: 0,
                    invoked: event.seq,
                    responded: u64::MAX,
                });
            }
            OpPhase::Response => {
                let slot = open.iter().position(|(t, _)| *t == event.thread);
                let Some(slot) = slot else {
                    return Err(LinError::UnbalancedHistory {
                        thread: event.thread,
                        op: event.op.to_string(),
                    });
                };
                let (_, idx) = open.swap_remove(slot);
                let op = &mut ops[idx];
                if op.op != event.op {
                    return Err(LinError::UnbalancedHistory {
                        thread: event.thread,
                        op: event.op.to_string(),
                    });
                }
                op.response_value = event.value;
                op.responded = event.seq;
            }
        }
    }
    if let Some((thread, idx)) = open.first() {
        return Err(LinError::UnbalancedHistory {
            thread: *thread,
            op: ops[*idx].op.to_string(),
        });
    }
    Ok(ops)
}

/// Bitset over operation indices (histories are storm-sized, so a small
/// `Vec<u64>` is plenty).
#[derive(Clone, PartialEq, Eq, Hash)]
struct Done(Vec<u64>);

impl Done {
    fn new(n: usize) -> Self {
        Done(vec![0; n.div_ceil(64)])
    }
    fn get(&self, i: usize) -> bool {
        self.0[i / 64] >> (i % 64) & 1 == 1
    }
    fn set(&mut self, i: usize) {
        self.0[i / 64] |= 1 << (i % 64);
    }
    fn clear(&mut self, i: usize) {
        self.0[i / 64] &= !(1 << (i % 64));
    }
}

/// Searches for a valid linearization of `ops` against `initial`.
///
/// Returns the linearization as indices into `ops` (one witness order; in
/// general many exist), or [`LinError::NotLinearizable`].
pub fn check_linearizable<M: LinModel>(
    initial: M,
    ops: &[Operation],
) -> Result<Vec<usize>, LinError> {
    let n = ops.len();
    let mut done = Done::new(n);
    let mut order = Vec::with_capacity(n);
    let mut seen: HashSet<(Done, M)> = HashSet::new();
    if dfs(&initial, ops, &mut done, &mut order, &mut seen) {
        Ok(order)
    } else {
        Err(LinError::NotLinearizable {
            states_explored: seen.len(),
            operations: n,
        })
    }
}

fn dfs<M: LinModel>(
    model: &M,
    ops: &[Operation],
    done: &mut Done,
    order: &mut Vec<usize>,
    seen: &mut HashSet<(Done, M)>,
) -> bool {
    if order.len() == ops.len() {
        return true;
    }
    if !seen.insert((done.clone(), model.clone())) {
        return false; // this frontier already failed
    }
    // An op may be linearized next iff no other pending op responded
    // before it was invoked (Wing–Gong's minimal-operation rule).
    let min_resp = ops
        .iter()
        .enumerate()
        .filter(|(i, _)| !done.get(*i))
        .map(|(_, op)| op.responded)
        .min()
        .expect("not all done");
    for i in 0..ops.len() {
        if done.get(i) {
            continue;
        }
        let op = &ops[i];
        if op.invoked > min_resp && op.responded != min_resp {
            continue; // some pending op completed before this one began
        }
        if let Some(next) = model.step(op) {
            done.set(i);
            order.push(i);
            if dfs(&next, ops, done, order, seen) {
                return true;
            }
            order.pop();
            done.clear(i);
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::{FifoQueueLin, SemaphoreLin, RESP_CANCELLED, RESP_OK};
    use cqs_chaos::{OpEvent, OpPhase};

    fn ev(seq: u64, thread: u64, op: &'static str, phase: OpPhase, value: u64) -> OpEvent {
        OpEvent {
            seq,
            thread,
            instance: 1,
            op,
            phase,
            value,
        }
    }

    #[test]
    fn pairs_interleaved_events_per_thread() {
        let events = vec![
            ev(0, 0, "sem.acquire", OpPhase::Invoke, 0),
            ev(1, 1, "sem.acquire", OpPhase::Invoke, 0),
            ev(2, 1, "sem.acquire", OpPhase::Response, RESP_OK),
            ev(3, 0, "sem.acquire", OpPhase::Response, RESP_CANCELLED),
        ];
        let ops = pair_history(&events).unwrap();
        assert_eq!(ops.len(), 2);
        assert_eq!(ops[0].thread, 0);
        assert_eq!(ops[0].response_value, RESP_CANCELLED);
        assert_eq!(ops[1].responded, 2);
    }

    #[test]
    fn dangling_invoke_is_rejected() {
        let events = vec![ev(0, 0, "sem.acquire", OpPhase::Invoke, 0)];
        assert!(matches!(
            pair_history(&events),
            Err(LinError::UnbalancedHistory { thread: 0, .. })
        ));
    }

    #[test]
    fn accepts_overlapping_acquires_on_two_permits() {
        // Two concurrent acquires both succeed on a 2-permit semaphore.
        let events = vec![
            ev(0, 0, "sem.acquire", OpPhase::Invoke, 0),
            ev(1, 1, "sem.acquire", OpPhase::Invoke, 0),
            ev(2, 0, "sem.acquire", OpPhase::Response, RESP_OK),
            ev(3, 1, "sem.acquire", OpPhase::Response, RESP_OK),
        ];
        let ops = pair_history(&events).unwrap();
        check_linearizable(SemaphoreLin::new(2), &ops).expect("linearizable");
    }

    #[test]
    fn rejects_two_sequential_acquires_on_one_permit() {
        // The second acquire begins after the first responded — real time
        // forces their order, and one permit cannot serve both.
        let events = vec![
            ev(0, 0, "sem.acquire", OpPhase::Invoke, 0),
            ev(1, 0, "sem.acquire", OpPhase::Response, RESP_OK),
            ev(2, 1, "sem.acquire", OpPhase::Invoke, 0),
            ev(3, 1, "sem.acquire", OpPhase::Response, RESP_OK),
        ];
        let ops = pair_history(&events).unwrap();
        let err = check_linearizable(SemaphoreLin::new(1), &ops).unwrap_err();
        assert!(matches!(
            err,
            LinError::NotLinearizable { operations: 2, .. }
        ));
    }

    #[test]
    fn accepts_concurrent_overdraw_only_when_concurrent() {
        // Same two acquires but overlapping: still not linearizable on
        // one permit (no release in between in ANY order) — a cancelled
        // second acquire, however, is fine.
        let events = vec![
            ev(0, 0, "sem.acquire", OpPhase::Invoke, 0),
            ev(1, 1, "sem.acquire", OpPhase::Invoke, 0),
            ev(2, 0, "sem.acquire", OpPhase::Response, RESP_OK),
            ev(3, 1, "sem.acquire", OpPhase::Response, RESP_CANCELLED),
        ];
        let ops = pair_history(&events).unwrap();
        check_linearizable(SemaphoreLin::new(1), &ops).expect("cancelled op is a no-op");
    }

    #[test]
    fn fifo_queue_take_order_must_match_put_order() {
        // put(1) completes before put(2) begins; a take that returns 2
        // while 1 is still queued violates FIFO.
        let events = vec![
            ev(0, 0, "pool.put", OpPhase::Invoke, 1),
            ev(1, 0, "pool.put", OpPhase::Response, 0),
            ev(2, 0, "pool.put", OpPhase::Invoke, 2),
            ev(3, 0, "pool.put", OpPhase::Response, 0),
            ev(4, 1, "pool.take", OpPhase::Invoke, 0),
            ev(5, 1, "pool.take", OpPhase::Response, 2),
        ];
        let ops = pair_history(&events).unwrap();
        let err = check_linearizable(FifoQueueLin::default(), &ops).unwrap_err();
        assert!(matches!(err, LinError::NotLinearizable { .. }));
        // Returning 1 instead is the FIFO answer.
        let mut ok_events = events;
        ok_events[5].value = 1;
        let ops = pair_history(&ok_events).unwrap();
        let order = check_linearizable(FifoQueueLin::default(), &ops).unwrap();
        assert_eq!(order.len(), 3);
    }

    #[test]
    fn linearization_witness_respects_real_time() {
        // Release fully precedes the acquire in real time; the witness
        // must put it first even though op order in the log starts with
        // the acquire invoke... (start from 0 available).
        let events = vec![
            ev(0, 0, "sem.release", OpPhase::Invoke, 0),
            ev(1, 0, "sem.release", OpPhase::Response, 0),
            ev(2, 1, "sem.acquire", OpPhase::Invoke, 0),
            ev(3, 1, "sem.acquire", OpPhase::Response, RESP_OK),
        ];
        let ops = pair_history(&events).unwrap();
        let sem = SemaphoreLin {
            available: 0,
            capacity: 1,
        };
        let order = check_linearizable(sem, &ops).unwrap();
        assert_eq!(order, vec![0, 1]);
    }
}
