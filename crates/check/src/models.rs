//! Sequential reference models of the CQS primitives.
//!
//! [`CellArrayModel`] is the single-threaded model the property tests
//! (`tests/proptest_batch.rs`, `tests/proptest_invariants.rs`) execute in
//! lockstep with the real structure: an infinite array of cells walked by
//! a suspend counter and a resume counter, exactly the abstraction the
//! paper's Iris specification is stated over.
//!
//! The `*Lin` types are the same abstractions packaged as
//! [`LinModel`] state machines for the Wing–Gong
//! linearizability checker: they consume *completed operations* (with
//! their observed results) instead of driving the primitive, and judge
//! whether each observed result is legal in the current sequential state.

use std::collections::VecDeque;

use crate::lin::{LinModel, Operation};

/// Response payload marking an operation that completed by cancellation
/// (the op observed no value; a cancelled acquire/lock/take is a no-op in
/// every sequential model). Real values must stay below this sentinel.
pub const RESP_CANCELLED: u64 = u64::MAX;

/// Response payload for successful unit-valued operations (acquire, lock).
pub const RESP_OK: u64 = 0;

// ---------------------------------------------------------------------
// Cell-array model (CQS in simple cancellation mode)
// ---------------------------------------------------------------------

/// One cell of [`CellArrayModel`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelCell {
    /// Untouched by either counter.
    Empty,
    /// A resumer parked a value here before the suspender arrived.
    Value(u64),
    /// A suspender waits here.
    Waiter,
    /// The waiter cancelled; a resume hitting this cell fails over.
    Cancelled,
    /// The rendezvous completed.
    Done,
}

/// Sequential reference model of the simple-cancellation CQS: an infinite
/// array of cells visited in order by two counters.
#[derive(Debug, Default, Clone)]
pub struct CellArrayModel {
    /// The cell array (grown on demand; index = counter value).
    pub cells: Vec<ModelCell>,
    /// Next cell a suspender claims.
    pub suspend_idx: usize,
    /// Next cell a resumer claims.
    pub resume_idx: usize,
}

impl CellArrayModel {
    /// The cell at `i`, growing the array as needed.
    pub fn cell(&mut self, i: usize) -> &mut ModelCell {
        if self.cells.len() <= i {
            self.cells.resize(i + 1, ModelCell::Empty);
        }
        &mut self.cells[i]
    }

    /// Returns `Some(value)` for an immediate result (elimination against
    /// a parked value), `None` for a suspension.
    pub fn suspend(&mut self) -> Option<u64> {
        let i = self.suspend_idx;
        self.suspend_idx += 1;
        match self.cell(i).clone() {
            ModelCell::Empty => {
                *self.cell(i) = ModelCell::Waiter;
                None
            }
            ModelCell::Value(v) => {
                *self.cell(i) = ModelCell::Done;
                Some(v)
            }
            other => unreachable!("suspend hit {other:?}"),
        }
    }

    /// One sequential resume: `Ok(Some(cell))` completed a waiter,
    /// `Ok(None)` parked the value, `Err(())` hit a cancelled cell.
    #[allow(clippy::result_unit_err)]
    pub fn resume(&mut self, v: u64) -> Result<Option<usize>, ()> {
        let i = self.resume_idx;
        self.resume_idx += 1;
        match self.cell(i).clone() {
            ModelCell::Empty => {
                *self.cell(i) = ModelCell::Value(v);
                Ok(None)
            }
            ModelCell::Waiter => {
                *self.cell(i) = ModelCell::Done;
                Ok(Some(i))
            }
            ModelCell::Cancelled => Err(()),
            other => unreachable!("resume hit {other:?}"),
        }
    }

    /// Marks the waiter in `cell` as cancelled (the caller tracks which
    /// pending future sat there).
    pub fn cancel(&mut self, cell: usize) {
        debug_assert_eq!(*self.cell(cell), ModelCell::Waiter);
        *self.cell(cell) = ModelCell::Cancelled;
    }

    /// Number of live waiters a broadcast (`resume_all`) would cover: the
    /// `Waiter` cells not yet reached by the resume counter.
    pub fn live_waiters(&self) -> usize {
        self.cells[self.resume_idx.min(self.cells.len())..]
            .iter()
            .filter(|c| **c == ModelCell::Waiter)
            .count()
    }
}

// ---------------------------------------------------------------------
// Linearizability state machines
// ---------------------------------------------------------------------

/// Counting semaphore: `sem.acquire` (response [`RESP_OK`] or
/// [`RESP_CANCELLED`]) and `sem.release`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SemaphoreLin {
    /// Permits currently available.
    pub available: u64,
    /// Total permits; `available` may never exceed it.
    pub capacity: u64,
}

impl SemaphoreLin {
    /// A semaphore with all `capacity` permits available.
    pub fn new(capacity: u64) -> Self {
        SemaphoreLin {
            available: capacity,
            capacity,
        }
    }
}

impl LinModel for SemaphoreLin {
    fn step(&self, op: &Operation) -> Option<Self> {
        match op.op {
            "sem.acquire" => {
                if op.response_value == RESP_CANCELLED {
                    return Some(self.clone());
                }
                if self.available == 0 {
                    return None;
                }
                Some(SemaphoreLin {
                    available: self.available - 1,
                    capacity: self.capacity,
                })
            }
            "sem.release" => {
                if self.available == self.capacity {
                    return None; // over-release: no legal linearization
                }
                Some(SemaphoreLin {
                    available: self.available + 1,
                    capacity: self.capacity,
                })
            }
            _ => None,
        }
    }
}

/// Mutual-exclusion lock: `mutex.lock` (response [`RESP_OK`] or
/// [`RESP_CANCELLED`]) and `mutex.unlock`.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct MutexLin {
    /// Whether some thread holds the lock.
    pub locked: bool,
}

impl LinModel for MutexLin {
    fn step(&self, op: &Operation) -> Option<Self> {
        match op.op {
            "mutex.lock" => {
                if op.response_value == RESP_CANCELLED {
                    return Some(self.clone());
                }
                if self.locked {
                    return None;
                }
                Some(MutexLin { locked: true })
            }
            "mutex.unlock" => {
                if !self.locked {
                    return None;
                }
                Some(MutexLin { locked: false })
            }
            _ => None,
        }
    }
}

/// FIFO queue (the [`QueuePool`](../../pool) abstraction): `pool.put`
/// carries the element in `invoke_value`; `pool.take`'s `response_value`
/// is the element received (or [`RESP_CANCELLED`]). A successful take
/// must observe the element at the head of the queue — this is the strict
/// FIFO order the paper's fairness theorem promises.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct FifoQueueLin {
    /// Elements in the queue, head first.
    pub queue: VecDeque<u64>,
}

impl LinModel for FifoQueueLin {
    fn step(&self, op: &Operation) -> Option<Self> {
        match op.op {
            "pool.put" => {
                let mut next = self.clone();
                next.queue.push_back(op.invoke_value);
                Some(next)
            }
            "pool.take" => {
                if op.response_value == RESP_CANCELLED {
                    return Some(self.clone());
                }
                if self.queue.front() != Some(&op.response_value) {
                    return None;
                }
                let mut next = self.clone();
                next.queue.pop_front();
                Some(next)
            }
            _ => None,
        }
    }
}

/// Bounded or unbounded FIFO channel (the `cqs-channel` abstraction):
/// `chan.send` carries the element in `invoke_value` and is legal only
/// while the channel has room (a completed send means the element *is* in
/// the channel — blocked sends that resolve later linearize at their
/// grant); `chan.recv`'s `response_value` must be the element at the
/// head. Cancelled ops ([`RESP_CANCELLED`]) are no-ops.
///
/// Not applicable to rendezvous channels: with zero capacity no send is
/// ever sequentially legal, yet every completed rendezvous send is — the
/// rendezvous pairing is checked by the chaos storms and the explorer
/// instead.
///
/// Models the channel's strict-FIFO core — one sender, one receiver, no
/// receive cancellation (see "Ordering" in the `cqs-channel` docs):
/// histories with concurrent receivers, concurrent senders, or refused
/// hand-offs may be reordered at those relaxed edges and are checked for
/// conservation by the chaos storms rather than against this model.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ChannelLin {
    /// Elements in flight, head first.
    pub queue: VecDeque<u64>,
    /// Buffer capacity; `None` = unbounded. Must be at least 1.
    pub capacity: Option<u64>,
}

impl ChannelLin {
    /// An empty channel with the given capacity (`None` = unbounded).
    ///
    /// # Panics
    ///
    /// Panics on `Some(0)` — see the type docs.
    pub fn new(capacity: Option<u64>) -> Self {
        assert_ne!(capacity, Some(0), "rendezvous channels have no LinModel");
        ChannelLin {
            queue: VecDeque::new(),
            capacity,
        }
    }
}

impl LinModel for ChannelLin {
    fn step(&self, op: &Operation) -> Option<Self> {
        match op.op {
            "chan.send" => {
                if op.response_value == RESP_CANCELLED {
                    return Some(self.clone());
                }
                if let Some(c) = self.capacity {
                    if self.queue.len() as u64 >= c {
                        return None; // a send over capacity cannot linearize here
                    }
                }
                let mut next = self.clone();
                next.queue.push_back(op.invoke_value);
                Some(next)
            }
            "chan.recv" => {
                if op.response_value == RESP_CANCELLED {
                    return Some(self.clone());
                }
                if self.queue.front() != Some(&op.response_value) {
                    return None;
                }
                let mut next = self.clone();
                next.queue.pop_front();
                Some(next)
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_array_model_parks_delivers_and_fails_over() {
        let mut m = CellArrayModel::default();
        // Park a value, eliminate it with the next suspend.
        assert_eq!(m.resume(7), Ok(None));
        assert_eq!(m.suspend(), Some(7));
        // Suspend first, deliver to the waiter.
        assert_eq!(m.suspend(), None);
        assert_eq!(m.resume(9), Ok(Some(1)));
        // Cancel a waiter; the resume aimed at it fails.
        assert_eq!(m.suspend(), None);
        m.cancel(2);
        assert_eq!(m.resume(11), Err(()));
        assert_eq!(m.live_waiters(), 0);
    }

    #[test]
    fn semaphore_lin_rejects_overdraw_and_overrelease() {
        let s = SemaphoreLin::new(1);
        let acquire = |resp| Operation {
            thread: 0,
            instance: 0,
            op: "sem.acquire",
            invoke_value: 0,
            response_value: resp,
            invoked: 0,
            responded: 1,
        };
        let release = Operation {
            op: "sem.release",
            ..acquire(RESP_OK)
        };
        let after = s.step(&acquire(RESP_OK)).unwrap();
        assert_eq!(after.available, 0);
        assert!(after.step(&acquire(RESP_OK)).is_none(), "no permit left");
        assert!(after.step(&acquire(RESP_CANCELLED)).is_some());
        assert!(s.step(&release).is_none(), "over-release rejected");
        assert_eq!(after.step(&release).unwrap().available, 1);
    }

    #[test]
    fn channel_lin_enforces_capacity_and_head_order() {
        let ch = ChannelLin::new(Some(2));
        let send = |v| Operation {
            thread: 0,
            instance: 0,
            op: "chan.send",
            invoke_value: v,
            response_value: RESP_OK,
            invoked: 0,
            responded: 1,
        };
        let recv = |v| Operation {
            op: "chan.recv",
            invoke_value: 0,
            response_value: v,
            ..send(0)
        };
        let full = ch.step(&send(1)).unwrap().step(&send(2)).unwrap();
        assert!(full.step(&send(3)).is_none(), "capacity 2 is exhausted");
        assert!(
            full.step(&Operation {
                response_value: RESP_CANCELLED,
                ..send(3)
            })
            .is_some(),
            "a cancelled send is a no-op"
        );
        assert!(full.step(&recv(2)).is_none(), "2 is not at the head");
        let rest = full.step(&recv(1)).unwrap();
        assert_eq!(rest.step(&recv(2)).unwrap().queue.len(), 0);
        let unbounded = ChannelLin::new(None);
        let mut m = unbounded;
        for v in 0..100 {
            m = m.step(&send(v)).unwrap();
        }
    }

    #[test]
    fn fifo_queue_lin_enforces_head_order() {
        let q = FifoQueueLin::default();
        let put = |v| Operation {
            thread: 0,
            instance: 0,
            op: "pool.put",
            invoke_value: v,
            response_value: 0,
            invoked: 0,
            responded: 1,
        };
        let take = |v| Operation {
            op: "pool.take",
            invoke_value: 0,
            response_value: v,
            ..put(0)
        };
        let q = q.step(&put(1)).unwrap().step(&put(2)).unwrap();
        assert!(q.step(&take(2)).is_none(), "2 is not at the head");
        let q = q.step(&take(1)).unwrap();
        assert_eq!(q.step(&take(2)).unwrap().queue.len(), 0);
    }
}
