//! Exhaustive crash-fault placement over the `cqs_chaos::fault!` windows.
//!
//! Where the pinned-seed panic storms *sample* crash placements, this
//! module *exhausts* them: [`FaultExplorer`] runs a scenario once per
//! (label, occurrence) pair — forcing a panic at exactly the k-th crossing
//! of one labelled crash window via a [`CountdownFault`] scheduler — and
//! reports the first placement whose aftermath violates the scenario's
//! invariants. With the recovery paths compiled out (the workspace's
//! TEST-ONLY `planted-unguarded` feature), the explorer is expected to
//! find a counterexample; with them in place, every placement must leave
//! the primitive either fully operational or cleanly poisoned.
//!
//! Like the interleaving [`explorer`](crate::explorer), this module plugs
//! into the windows through the unconditional [`cqs_chaos::Scheduler`]
//! trait, so the crate itself needs no cargo feature: the scheduler only
//! receives callbacks when the final test binary enables `chaos`.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

/// A [`cqs_chaos::Scheduler`] that panics at exactly the `occurrence`-th
/// crossing of one labelled crash-fault window and declines every other
/// injection. Deterministic by construction: no rng, no budget — one
/// placement per scheduler instance.
#[derive(Debug)]
pub struct CountdownFault {
    label: &'static str,
    occurrence: usize,
    seen: AtomicUsize,
    fired: AtomicBool,
}

impl CountdownFault {
    /// A fault armed for the `occurrence`-th (1-based) crossing of
    /// `label`'s window.
    ///
    /// # Panics
    ///
    /// Panics if `occurrence` is zero.
    pub fn new(label: &'static str, occurrence: usize) -> Self {
        assert!(occurrence > 0, "occurrences are 1-based");
        CountdownFault {
            label,
            occurrence,
            seen: AtomicUsize::new(0),
            fired: AtomicBool::new(false),
        }
    }

    /// Whether the armed placement was reached and the panic injected.
    pub fn fired(&self) -> bool {
        self.fired.load(Ordering::SeqCst)
    }

    /// How many times the armed label's window was crossed.
    pub fn crossings(&self) -> usize {
        self.seen.load(Ordering::SeqCst)
    }
}

impl cqs_chaos::Scheduler for CountdownFault {
    fn at_point(&self, _label: &'static str) {
        // No timing perturbation: fault placement is the only variable, so
        // a found counterexample replays without a schedule trace.
    }

    fn at_fault(&self, label: &'static str) -> bool {
        if label != self.label {
            return false;
        }
        let k = self.seen.fetch_add(1, Ordering::SeqCst) + 1;
        k == self.occurrence && !self.fired.swap(true, Ordering::SeqCst)
    }
}

/// One crash placement the explorer exercised or found failing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultCase {
    /// The crash window's label (one of [`cqs_chaos::FAULT_LABELS`]).
    pub label: &'static str,
    /// Which crossing of the window panicked (1-based).
    pub occurrence: usize,
}

/// A placement whose aftermath violated the scenario's invariants.
#[derive(Debug, Clone)]
pub struct FaultCounterExample {
    /// The failing placement; re-run the scenario under
    /// `CountdownFault::new(case.label, case.occurrence)` to replay it.
    pub case: FaultCase,
    /// The invariant violation the scenario reported.
    pub message: String,
}

impl std::fmt::Display for FaultCounterExample {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "crash at `{}` (crossing #{}) violated invariants: {}",
            self.case.label, self.case.occurrence, self.message
        )
    }
}

/// Summary of a clean exploration (no placement violated the scenario).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultReport {
    /// Scenario executions, including those whose placement was never
    /// reached.
    pub cases_run: usize,
    /// Executions in which the armed panic actually fired.
    pub injections: usize,
}

/// Exhausts crash placements in the labelled fault windows: for every
/// label, the scenario runs with a panic forced at crossing 1, 2, ... until
/// either a crossing is never reached (that label's placement space is
/// exhausted) or [`max_occurrences`](Self::max_occurrences) caps it.
#[derive(Debug, Clone)]
pub struct FaultExplorer {
    labels: Vec<&'static str>,
    max_occurrences: usize,
}

impl FaultExplorer {
    /// An explorer over every registered crash window
    /// ([`cqs_chaos::FAULT_LABELS`]).
    pub fn new() -> Self {
        Self::with_labels(cqs_chaos::FAULT_LABELS.to_vec())
    }

    /// An explorer over a chosen subset of crash windows.
    pub fn with_labels(labels: Vec<&'static str>) -> Self {
        FaultExplorer {
            labels,
            max_occurrences: 64,
        }
    }

    /// Caps the per-label crossing count (default 64) for scenarios whose
    /// windows are crossed unboundedly often.
    #[must_use]
    pub fn max_occurrences(mut self, n: usize) -> Self {
        assert!(n > 0, "occurrences are 1-based");
        self.max_occurrences = n;
        self
    }

    /// Runs `scenario` once per placement. The scenario builds a fresh
    /// primitive, performs the operations that cross the armed window
    /// (catching the injected panic where it surfaces), and then checks
    /// its invariants — returning `Err(violation)` when the aftermath is
    /// wrong (a hung waiter, a lost element, an operational-but-corrupt
    /// primitive).
    ///
    /// Exploration is serialized through the global chaos scheduler slot:
    /// run fault explorations under `--test-threads=1` (as the chaos
    /// storms already do) so concurrent tests don't steal the scheduler.
    ///
    /// # Errors
    ///
    /// The first failing placement, with the scenario's violation message.
    pub fn explore<F>(&self, scenario: F) -> Result<FaultReport, FaultCounterExample>
    where
        F: Fn() -> Result<(), String>,
    {
        let mut cases_run = 0;
        let mut injections = 0;
        for &label in &self.labels {
            for occurrence in 1..=self.max_occurrences {
                let fault = Arc::new(CountdownFault::new(label, occurrence));
                let outcome = {
                    let _guard = cqs_chaos::scoped_scheduler(Arc::clone(&fault) as _);
                    scenario()
                };
                cases_run += 1;
                if fault.fired() {
                    injections += 1;
                }
                if let Err(message) = outcome {
                    return Err(FaultCounterExample {
                        case: FaultCase { label, occurrence },
                        message,
                    });
                }
                if !fault.fired() {
                    // Crossing `occurrence` never happened: every earlier
                    // placement of this label has been exercised.
                    break;
                }
            }
        }
        Ok(FaultReport {
            cases_run,
            injections,
        })
    }
}

impl Default for FaultExplorer {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqs_chaos::Scheduler;

    #[test]
    fn countdown_fires_exactly_once_at_its_occurrence() {
        let fault = CountdownFault::new("cqs.resume-n.fault.mid-batch", 3);
        let outcomes: Vec<bool> = (0..5)
            .map(|_| fault.at_fault("cqs.resume-n.fault.mid-batch"))
            .collect();
        assert_eq!(outcomes, [false, false, true, false, false]);
        assert!(fault.fired());
        assert_eq!(fault.crossings(), 5);
    }

    #[test]
    fn countdown_ignores_other_labels() {
        let fault = CountdownFault::new("cqs.resume-n.fault.mid-batch", 1);
        assert!(!fault.at_fault("future.wake.fault.pre-fire"));
        assert!(!fault.fired());
        assert_eq!(fault.crossings(), 0);
    }

    /// Without the `chaos` feature no real window fires; the explorer
    /// still runs each label once (crossing 1 never reached → break) and
    /// reports zero injections.
    #[test]
    fn explorer_visits_every_label_and_stops_on_unreached_crossings() {
        let explorer =
            FaultExplorer::with_labels(vec!["a.fault.one", "b.fault.two"]).max_occurrences(8);
        let report = explorer.explore(|| Ok(())).unwrap();
        assert_eq!(report.cases_run, 2);
        assert_eq!(report.injections, 0);
    }

    #[test]
    fn explorer_surfaces_the_first_violation() {
        let explorer = FaultExplorer::with_labels(vec!["a.fault.one"]);
        let err = explorer
            .explore(|| Err("lost a permit".to_string()))
            .unwrap_err();
        assert_eq!(err.case.label, "a.fault.one");
        assert_eq!(err.case.occurrence, 1);
        assert!(err.to_string().contains("lost a permit"));
    }
}
