//! A deterministic interleaving explorer over the chaos-labelled race
//! windows (a loom-style, CHESS-style schedule searcher).
//!
//! The explorer runs a small multi-threaded [`Program`] under **serialized
//! execution**: exactly one program thread runs at a time, and control is
//! handed over only at *schedule points* — the `cqs_chaos::inject!`
//! labelled race windows (bridged in via the [`cqs_chaos::Scheduler`]
//! trait), or explicit [`schedule_point`] calls in unit tests. At every
//! point where more than one thread could run next, the explorer records a
//! decision; across repeated runs it backtracks depth-first through those
//! decisions, enumerating all interleavings up to
//! [`Explorer::preemption_bound`] involuntary context switches (CHESS-style
//! preemption bounding: most concurrency bugs need very few preemptions,
//! and the schedule space shrinks from exponential to polynomial).
//!
//! On failure the explorer returns the exact decision [`Trace`]; feeding it
//! to [`Explorer::replay`] re-executes that one schedule deterministically.
//!
//! Programs must only perform **non-blocking** operations on their
//! controlled threads (`suspend`/`resume`/`cancel`/`close`/`resume_n`,
//! `try_get`): a thread that parks outside a schedule point would stall the
//! serialized run. Assertions on final state belong in the program's
//! `check` closure, which runs after every thread has finished.

use std::cell::RefCell;
use std::collections::HashSet;
use std::fmt;
use std::panic::AssertUnwindSafe;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Label shown for a thread that has not yet taken its first step.
const SPAWN_LABEL: &str = "<spawn>";

// ---------------------------------------------------------------------
// Program under test
// ---------------------------------------------------------------------

/// A small concurrent program for the explorer: two or three thread
/// bodies plus a final check over the shared state they leave behind.
pub struct Program {
    threads: Vec<Box<dyn FnOnce() + Send>>,
    check: Box<dyn FnOnce() -> Result<(), String>>,
}

impl Program {
    /// Creates an empty program (add threads with [`Program::thread`]).
    pub fn new() -> Self {
        Program {
            threads: Vec::new(),
            check: Box::new(|| Ok(())),
        }
    }

    /// Adds a controlled thread. Thread ordinals follow insertion order.
    pub fn thread(mut self, body: impl FnOnce() + Send + 'static) -> Self {
        self.threads.push(Box::new(body));
        self
    }

    /// Sets the final-state check, run on the explorer's own thread after
    /// all program threads have finished. Returning `Err` (or a panic in
    /// any thread body) makes the current schedule a counterexample.
    pub fn check(mut self, check: impl FnOnce() -> Result<(), String> + 'static) -> Self {
        self.check = Box::new(check);
        self
    }
}

impl Default for Program {
    fn default() -> Self {
        Self::new()
    }
}

// ---------------------------------------------------------------------
// Traces
// ---------------------------------------------------------------------

/// One recorded scheduling decision (only points with a real choice are
/// recorded; forced continuations are not decisions).
#[derive(Debug, Clone)]
pub struct TraceStep {
    /// Ordinal of the thread scheduled next.
    pub chosen: usize,
    /// The label the chosen thread was parked at when it was picked
    /// (`"<spawn>"` before its first step).
    pub label: &'static str,
    /// How many other threads could have been scheduled instead.
    pub alternatives: usize,
    /// Whether this decision preempted a thread that could have continued.
    pub preemption: bool,
}

/// A replayable schedule: the sequence of decisions taken at every
/// branching schedule point of one run.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// The recorded decisions, in schedule order.
    pub steps: Vec<TraceStep>,
}

impl Trace {
    /// The raw decision list, suitable for [`Explorer::replay`].
    pub fn choices(&self) -> Vec<usize> {
        self.steps.iter().map(|s| s.chosen).collect()
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "schedule trace ({} decisions):", self.steps.len())?;
        for (i, step) in self.steps.iter().enumerate() {
            writeln!(
                f,
                "  #{i:<3} run t{} from {}{}  [{} alternative{}]",
                step.chosen,
                step.label,
                if step.preemption {
                    "  (preemption)"
                } else {
                    ""
                },
                step.alternatives,
                if step.alternatives == 1 { "" } else { "s" },
            )?;
        }
        Ok(())
    }
}

/// A failing schedule: the check error (or thread panic) plus the decision
/// trace that reproduces it via [`Explorer::replay`].
#[derive(Debug)]
pub struct CounterExample {
    /// The check failure or panic message.
    pub error: String,
    /// The schedule that produced it.
    pub trace: Trace,
}

impl fmt::Display for CounterExample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "counterexample: {}", self.error)?;
        write!(f, "{}", self.trace)
    }
}

/// Summary of a bounded exploration.
#[derive(Debug)]
pub struct Exploration {
    /// Number of schedules executed.
    pub runs: usize,
    /// Whether the bounded schedule space was fully enumerated (false when
    /// `max_runs` or `time_budget` stopped the search early).
    pub exhausted: bool,
    /// Runs cut short by `max_steps` (their tails ran unbranched).
    pub truncated_runs: usize,
    /// Forced decisions that no longer matched a runnable thread on
    /// replay; nonzero values mean the program has schedule-independent
    /// nondeterminism and coverage is best-effort for those prefixes.
    pub divergences: usize,
    /// The first failing schedule found, if any.
    pub counterexample: Option<CounterExample>,
}

// ---------------------------------------------------------------------
// Scheduler internals
// ---------------------------------------------------------------------

#[derive(Clone, Copy, PartialEq, Eq)]
enum Slot {
    Waiting,
    Running,
    Done,
}

/// A decision point with the not-yet-explored alternatives (the DFS
/// stack's element).
struct StepRecord {
    chosen: usize,
    untried: Vec<usize>,
}

struct RunState {
    slots: Vec<Slot>,
    /// Per thread: the label it is currently parked at.
    labels: Vec<&'static str>,
    registered: usize,
    current: Option<usize>,
    /// Decision prefix to follow (from the DFS stack).
    forced: Vec<usize>,
    /// Index of the next branching decision (into `forced` while
    /// replaying, beyond it while exploring).
    cursor: usize,
    /// Decisions taken beyond the forced prefix this run.
    new_steps: Vec<StepRecord>,
    /// Printable record of every branching decision this run.
    trace: Vec<TraceStep>,
    preemptions: usize,
    steps: u64,
    truncated: bool,
    divergences: usize,
    /// Abandon serialization: all threads run freely to completion (set on
    /// participant panic or stall so the run can be joined and reported).
    free_run: bool,
    failure: Option<String>,
}

struct Shared {
    state: Mutex<RunState>,
    cv: Condvar,
    preemption_bound: usize,
    max_steps: u64,
    ignored_prefixes: Vec<String>,
}

impl Shared {
    fn new(n: usize, forced: Vec<usize>, explorer: &Explorer) -> Self {
        Shared {
            state: Mutex::new(RunState {
                slots: vec![Slot::Waiting; n],
                labels: vec![SPAWN_LABEL; n],
                registered: 0,
                current: None,
                forced,
                cursor: 0,
                new_steps: Vec::new(),
                trace: Vec::new(),
                preemptions: 0,
                steps: 0,
                truncated: false,
                divergences: 0,
                free_run: false,
                failure: None,
            }),
            cv: Condvar::new(),
            preemption_bound: explorer.preemption_bound,
            max_steps: explorer.max_steps,
            ignored_prefixes: explorer.ignored_prefixes.clone(),
        }
    }

    fn all_done(state: &RunState) -> bool {
        state.slots.iter().all(|s| *s == Slot::Done)
    }

    /// Picks the next thread to run. `prev` is the thread that just
    /// yielded at a schedule point (`None` when a thread finished or at
    /// run start, where switching costs no preemption).
    fn pick_next(&self, st: &mut RunState, prev: Option<usize>) {
        if st.free_run {
            self.cv.notify_all();
            return;
        }
        // Candidate order: continue the previous thread first (the
        // fewest-context-switches schedule is explored first), then the
        // remaining runnable threads by ordinal.
        let mut candidates: Vec<usize> = Vec::new();
        if let Some(p) = prev {
            candidates.push(p);
        }
        for (t, slot) in st.slots.iter().enumerate() {
            if *slot == Slot::Waiting && Some(t) != prev {
                candidates.push(t);
            }
        }
        if candidates.is_empty() {
            // All threads done: wake the driver.
            st.current = None;
            self.cv.notify_all();
            return;
        }
        // Preemption bounding: once the budget is spent, a thread that can
        // continue must continue. Step truncation stops branching too.
        if prev.is_some() && st.preemptions >= self.preemption_bound {
            candidates.truncate(1);
        }
        if st.steps > self.max_steps {
            st.truncated = true;
            candidates.truncate(1);
        }

        let chosen = if candidates.len() == 1 {
            candidates[0]
        } else if st.cursor < st.forced.len() {
            let want = st.forced[st.cursor];
            st.cursor += 1;
            if candidates.contains(&want) {
                want
            } else {
                // The program behaved differently than when this prefix
                // was recorded (schedule-independent nondeterminism, e.g.
                // a global allocator or collector threshold). Fall back
                // deterministically and count it.
                st.divergences += 1;
                candidates[0]
            }
        } else {
            st.cursor += 1;
            st.new_steps.push(StepRecord {
                chosen: candidates[0],
                untried: candidates[1..].to_vec(),
            });
            candidates[0]
        };
        if candidates.len() > 1 {
            st.trace.push(TraceStep {
                chosen,
                label: st.labels[chosen],
                alternatives: candidates.len() - 1,
                preemption: prev.is_some_and(|p| p != chosen),
            });
        }
        if prev.is_some_and(|p| p != chosen) {
            st.preemptions += 1;
        }
        st.current = Some(chosen);
        self.cv.notify_all();
    }

    /// A controlled thread reached the labelled schedule point: yield the
    /// schedule and block until picked again.
    fn point(&self, me: usize, label: &'static str) {
        if self
            .ignored_prefixes
            .iter()
            .any(|p| label.starts_with(p.as_str()))
        {
            return;
        }
        let mut st = self.state.lock().unwrap();
        if st.free_run {
            return;
        }
        st.steps += 1;
        st.slots[me] = Slot::Waiting;
        st.labels[me] = label;
        self.pick_next(&mut st, Some(me));
        while !st.free_run && st.current != Some(me) {
            st = self.cv.wait(st).unwrap();
        }
        if !st.free_run {
            st.slots[me] = Slot::Running;
        }
    }

    /// Registration gate: announce readiness, then block until scheduled
    /// for the first time.
    fn register_and_wait(&self, me: usize) {
        let mut st = self.state.lock().unwrap();
        st.registered += 1;
        self.cv.notify_all();
        while !st.free_run && st.current != Some(me) {
            st = self.cv.wait(st).unwrap();
        }
        if !st.free_run {
            st.slots[me] = Slot::Running;
        }
    }

    fn finish(&self, me: usize, panic_message: Option<String>) {
        let mut st = self.state.lock().unwrap();
        st.slots[me] = Slot::Done;
        if let Some(message) = panic_message {
            if st.failure.is_none() {
                st.failure = Some(message);
            }
            // Let every other thread run to completion unserialized so the
            // run can be joined and the trace reported.
            st.free_run = true;
            self.cv.notify_all();
            return;
        }
        self.pick_next(&mut st, None);
    }
}

thread_local! {
    /// The explorer this thread belongs to (participants only).
    static PARTICIPANT: RefCell<Option<(Arc<Shared>, usize)>> = const { RefCell::new(None) };
}

/// Explicit schedule point for programs driven without the `chaos`
/// feature (unit tests of the explorer itself). On a thread not owned by
/// a running exploration this is a no-op, so it is always safe to call.
pub fn schedule_point(label: &'static str) {
    let participant = PARTICIPANT.try_with(|p| p.borrow().clone()).ok().flatten();
    if let Some((shared, me)) = participant {
        shared.point(me, label);
    }
}

/// Routes the `cqs_chaos::inject!` windows into the explorer: installed
/// as the global chaos scheduler for the duration of a run, it forwards
/// every labelled window on a participant thread to [`schedule_point`].
struct ChaosBridge;

impl cqs_chaos::Scheduler for ChaosBridge {
    fn at_point(&self, label: &'static str) {
        schedule_point(label);
    }
}

// ---------------------------------------------------------------------
// Explorer
// ---------------------------------------------------------------------

/// Bounded depth-first schedule explorer (see module docs).
#[derive(Debug, Clone)]
pub struct Explorer {
    /// Maximum involuntary context switches per schedule (CHESS bound).
    pub preemption_bound: usize,
    /// Maximum schedule points per run; beyond it the run finishes on a
    /// single deterministic tail (counted in `truncated_runs`).
    pub max_steps: u64,
    /// Hard cap on the number of schedules to execute.
    pub max_runs: usize,
    /// Wall-clock budget for the whole exploration.
    pub time_budget: Duration,
    /// How long a single run may go without completing before it is
    /// declared stalled (a program thread blocked outside a schedule
    /// point) and failed.
    pub stall_timeout: Duration,
    /// Label prefixes that are *not* schedule points. The epoch
    /// collector's windows are excluded by default: its amortized,
    /// process-global triggers would make runs nondeterministic across an
    /// exploration, and PAPERS.md's reclamation-decoupling argument is
    /// exactly that the model seam should not include the collector.
    pub ignored_prefixes: Vec<String>,
}

impl Default for Explorer {
    fn default() -> Self {
        Explorer {
            preemption_bound: 2,
            max_steps: 5_000,
            max_runs: 200_000,
            time_budget: Duration::from_secs(120),
            stall_timeout: Duration::from_secs(30),
            ignored_prefixes: vec!["epoch.".to_string()],
        }
    }
}

struct RunOutcome {
    result: Result<(), String>,
    new_steps: Vec<StepRecord>,
    trace: Trace,
    truncated: bool,
    divergences: usize,
}

impl Explorer {
    /// Explores the schedule space of `setup`'s program depth-first up to
    /// the configured bounds. `setup` is called once per run and must
    /// build a fresh, equivalent program each time.
    pub fn explore(&self, mut setup: impl FnMut() -> Program) -> Exploration {
        let started = Instant::now();
        let mut stack: Vec<StepRecord> = Vec::new();
        let mut runs = 0;
        let mut truncated_runs = 0;
        let mut divergences = 0;
        loop {
            let forced: Vec<usize> = stack.iter().map(|s| s.chosen).collect();
            let outcome = self.run_once(setup(), forced);
            runs += 1;
            truncated_runs += usize::from(outcome.truncated);
            divergences += outcome.divergences;
            if let Err(error) = outcome.result {
                return Exploration {
                    runs,
                    exhausted: false,
                    truncated_runs,
                    divergences,
                    counterexample: Some(CounterExample {
                        error,
                        trace: outcome.trace,
                    }),
                };
            }
            stack.extend(outcome.new_steps);
            // Depth-first backtrack: redirect the deepest decision that
            // still has an unexplored alternative.
            let exhausted = loop {
                match stack.last_mut() {
                    None => break true,
                    Some(last) if last.untried.is_empty() => {
                        stack.pop();
                    }
                    Some(last) => {
                        last.chosen = last.untried.remove(0);
                        break false;
                    }
                }
            };
            if exhausted || runs >= self.max_runs || started.elapsed() > self.time_budget {
                return Exploration {
                    runs,
                    exhausted,
                    truncated_runs,
                    divergences,
                    counterexample: None,
                };
            }
        }
    }

    /// Re-executes one schedule from a recorded decision list (see
    /// [`Trace::choices`]) and returns the program check's verdict.
    pub fn replay(&self, setup: impl FnOnce() -> Program, choices: &[usize]) -> Result<(), String> {
        self.run_once(setup(), choices.to_vec()).result
    }

    fn run_once(&self, program: Program, forced: Vec<usize>) -> RunOutcome {
        let n = program.threads.len();
        assert!(n > 0, "explorer programs need at least one thread");
        let shared = Arc::new(Shared::new(n, forced, self));
        // Take over the chaos-labelled windows for the duration of the
        // run. Without the `chaos` feature this guard is inert and only
        // explicit `schedule_point` calls are controlled.
        let _guard = cqs_chaos::scoped_scheduler(Arc::new(ChaosBridge));

        let handles: Vec<_> = program
            .threads
            .into_iter()
            .enumerate()
            .map(|(ordinal, body)| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || {
                    PARTICIPANT.with(|p| *p.borrow_mut() = Some((Arc::clone(&shared), ordinal)));
                    shared.register_and_wait(ordinal);
                    let outcome = std::panic::catch_unwind(AssertUnwindSafe(body));
                    PARTICIPANT.with(|p| *p.borrow_mut() = None);
                    shared.finish(ordinal, outcome.err().map(panic_text));
                })
            })
            .collect();

        // Drive the run: wait for the registration gate, make the first
        // decision, then wait for completion (or a stall).
        {
            let mut st = shared.state.lock().unwrap();
            while st.registered < n {
                st = shared.cv.wait(st).unwrap();
            }
            shared.pick_next(&mut st, None);
            let (mut st, timeout) = shared
                .cv
                .wait_timeout_while(st, self.stall_timeout, |st| !Shared::all_done(st))
                .unwrap();
            if timeout.timed_out() && !Shared::all_done(&st) {
                st.free_run = true;
                if st.failure.is_none() {
                    st.failure = Some(format!(
                        "run stalled for {:?}: a program thread blocked outside a schedule point",
                        self.stall_timeout
                    ));
                }
                shared.cv.notify_all();
            }
        }
        for handle in handles {
            let _ = handle.join();
        }

        let mut st = shared.state.lock().unwrap();
        let trace = Trace {
            steps: std::mem::take(&mut st.trace),
        };
        let new_steps = std::mem::take(&mut st.new_steps);
        let truncated = st.truncated;
        let divergences = st.divergences;
        let failure = st.failure.take();
        drop(st);
        drop(shared);

        let result = match failure {
            Some(message) => Err(message),
            None => (program.check)(),
        };
        RunOutcome {
            result,
            new_steps,
            trace,
            truncated,
            divergences,
        }
    }

    /// Convenience wrapper asserting the bounded space is clean: panics
    /// with the printable counterexample if one is found, or if the
    /// bounds stopped the search before it was exhaustive.
    pub fn check_exhaustive(&self, setup: impl FnMut() -> Program) -> Exploration {
        let exploration = self.explore(setup);
        if let Some(cx) = &exploration.counterexample {
            panic!("model check failed after {} runs\n{cx}", exploration.runs);
        }
        assert!(
            exploration.exhausted,
            "exploration stopped early after {} runs (raise max_runs/time_budget)",
            exploration.runs
        );
        exploration
    }
}

fn panic_text(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("thread panicked: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("thread panicked: {s}")
    } else {
        "thread panicked (non-string payload)".to_string()
    }
}

// Used by unit tests below and by integration tests to assert distinct
// schedules were actually exercised.
#[doc(hidden)]
pub fn __distinct_schedules(traces: &[Vec<usize>]) -> usize {
    traces.iter().collect::<HashSet<_>>().len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex as StdMutex;

    /// Explorations install a process-global chaos scheduler; keep them
    /// from overlapping across the test harness's worker threads.
    fn serial() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: StdMutex<()> = StdMutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Two threads, two schedule points each, appending to a shared log:
    /// unbounded exploration must enumerate exactly C(4,2) = 6 distinct
    /// orders.
    #[test]
    fn enumerates_all_interleavings_of_two_threads() {
        let _serial = serial();
        let orders = Arc::new(StdMutex::new(HashSet::new()));
        let explorer = Explorer {
            preemption_bound: 8,
            ..Explorer::default()
        };
        let exploration = explorer.check_exhaustive(|| {
            let log = Arc::new(StdMutex::new(Vec::new()));
            let orders = Arc::clone(&orders);
            let mut program = Program::new();
            for id in 0..2usize {
                let log = Arc::clone(&log);
                program = program.thread(move || {
                    schedule_point("toy.first");
                    log.lock().unwrap().push(id);
                    schedule_point("toy.second");
                    log.lock().unwrap().push(id);
                });
            }
            program.check(move || {
                orders.lock().unwrap().insert(log.lock().unwrap().clone());
                Ok(())
            })
        });
        assert!(exploration.exhausted);
        assert_eq!(
            orders.lock().unwrap().len(),
            6,
            "expected all interleavings"
        );
    }

    /// A classic check-then-act race: both threads can pass the flag test
    /// before either sets it. The explorer must find it, produce a trace,
    /// and the trace must replay to the same failure.
    #[test]
    fn finds_check_then_act_race_and_replays_it() {
        let _serial = serial();
        let explorer = Explorer::default();
        let make = || {
            let flag = Arc::new(AtomicUsize::new(0));
            let inside = Arc::new(AtomicUsize::new(0));
            let mut program = Program::new();
            for _ in 0..2 {
                let flag = Arc::clone(&flag);
                let inside = Arc::clone(&inside);
                program = program.thread(move || {
                    if flag.load(Ordering::SeqCst) == 0 {
                        schedule_point("toy.race-window");
                        flag.store(1, Ordering::SeqCst);
                        inside.fetch_add(1, Ordering::SeqCst);
                    }
                });
            }
            program.check(move || {
                if inside.load(Ordering::SeqCst) > 1 {
                    Err("two threads entered the critical section".into())
                } else {
                    Ok(())
                }
            })
        };
        let exploration = explorer.explore(make);
        let cx = exploration
            .counterexample
            .expect("the race must be found within the bound");
        assert!(!cx.trace.steps.is_empty());
        let verdict = explorer.replay(make, &cx.trace.choices());
        assert_eq!(
            verdict,
            Err("two threads entered the critical section".to_string()),
            "replaying the counterexample trace must reproduce the failure"
        );
        // The full decision trace prints (smoke-check the Display path).
        assert!(format!("{cx}").contains("schedule trace"));
    }

    /// Preemption bounding prunes: bound 0 explores only voluntary
    /// switches (each thread runs to completion once scheduled).
    #[test]
    fn preemption_bound_zero_prunes_to_thread_orderings() {
        let _serial = serial();
        let explorer = Explorer {
            preemption_bound: 0,
            ..Explorer::default()
        };
        let exploration = explorer.check_exhaustive(|| {
            let mut program = Program::new();
            for _ in 0..2 {
                program = program.thread(|| {
                    schedule_point("toy.a");
                    schedule_point("toy.b");
                });
            }
            program
        });
        // With no preemptions the only choices are which thread starts
        // first and which continues when one finishes: 2 schedules.
        assert!(exploration.exhausted);
        assert_eq!(exploration.runs, 2);
    }

    /// Panics in program threads are captured as counterexamples instead
    /// of tearing down the harness.
    #[test]
    fn thread_panic_becomes_counterexample() {
        let _serial = serial();
        let explorer = Explorer::default();
        let exploration = explorer.explore(|| {
            Program::new()
                .thread(|| {
                    schedule_point("toy.pre-panic");
                    panic!("boom");
                })
                .thread(|| schedule_point("toy.bystander"))
        });
        let cx = exploration.counterexample.expect("panic must surface");
        assert!(cx.error.contains("boom"), "got: {}", cx.error);
    }

    /// Ignored label prefixes are not schedule points.
    #[test]
    fn ignored_prefixes_are_transparent() {
        let _serial = serial();
        let explorer = Explorer {
            ignored_prefixes: vec!["noise.".to_string()],
            preemption_bound: 8,
            ..Explorer::default()
        };
        let exploration = explorer.check_exhaustive(|| {
            let mut program = Program::new();
            for _ in 0..2 {
                program = program.thread(|| {
                    for _ in 0..50 {
                        schedule_point("noise.window");
                    }
                });
            }
            program
        });
        // Only the start decision branches: 2 schedules, not 2^100.
        assert_eq!(exploration.runs, 2);
    }
}
