//! `cqs-check`: offline model checking for the CQS stack.
//!
//! The paper this workspace reproduces proves CQS correct in Iris; this
//! crate is the executable stand-in for that proof effort. It provides
//! three independent verification tools, all free of crates.io
//! dependencies (consistent with the workspace's offline-shim policy):
//!
//! 1. [`explorer`] — a deterministic interleaving explorer. Small 2–3
//!    thread `suspend`/`resume`/`cancel`/`close`/`resume_n` programs run
//!    under serialized execution, with every `cqs_chaos::inject!` labelled
//!    race window acting as a schedule point; the explorer enumerates all
//!    schedules depth-first up to a CHESS-style preemption bound, and
//!    failures come with a replayable decision trace. Where the 72-seed
//!    chaos storms *sample* the schedule space, the explorer *exhausts* a
//!    bounded slice of it.
//!
//! 2. [`lin`] — a Wing–Gong linearizability checker. Chaos storms record
//!    per-thread invoke/response histories through the
//!    `cqs_chaos::record!` seam; the checker searches for a sequential
//!    order of those operations that a reference model ([`models`])
//!    accepts and that respects real time.
//!
//! 3. [`faults`] — an exhaustive crash-placement explorer over the
//!    `cqs_chaos::fault!` windows: a scenario runs once per
//!    (label, occurrence) pair with a panic forced at exactly that
//!    crossing, proving every placement leaves the primitive either fully
//!    operational or cleanly poisoned — never hung, never leaking.
//!
//! The crate deliberately avoids the `chaos` cargo feature: the explorer
//! plugs into the labelled windows through the unconditional
//! [`cqs_chaos::Scheduler`] trait, and only takes control of the real
//! windows when the *final test binary* is built with `--features chaos`.
//! Unit tests drive the explorer through explicit
//! [`explorer::schedule_point`] calls instead, so `cargo test -p
//! cqs-check` is meaningful without any feature flags.

#![warn(missing_docs)]

pub mod explorer;
pub mod faults;
pub mod lin;
pub mod models;

pub use explorer::{CounterExample, Exploration, Explorer, Program, Trace, TraceStep};
pub use faults::{CountdownFault, FaultCase, FaultCounterExample, FaultExplorer, FaultReport};
pub use lin::{check_linearizable, pair_history, LinError, LinModel, Operation};
pub use models::{
    CellArrayModel, ChannelLin, FifoQueueLin, ModelCell, MutexLin, SemaphoreLin, RESP_CANCELLED,
    RESP_OK,
};
