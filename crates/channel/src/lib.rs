#![warn(missing_docs)]

//! Segment-native MPMC channels built directly on CQS — the extension the
//! paper names first among CQS's applications (§7), following the design
//! lineage of "Fast and Scalable Channels in Kotlin Coroutines" (Koval,
//! Alistarh, Elizarov): the channel *is* two cancellable queue
//! synchronizers plus counters, not a composition of coarser primitives.
//!
//! [`CqsChannel`] comes in three capacities:
//!
//! * [`rendezvous`](CqsChannel::rendezvous) — no buffer; a send completes
//!   when a receiver takes the element (direct handoff);
//! * [`bounded(c)`](CqsChannel::bounded) — up to `c` buffered elements;
//!   senders beyond that suspend FIFO until receivers free capacity;
//! * [`unbounded`](CqsChannel::unbounded) — sends never suspend.
//!
//! # Structure
//!
//! Two smart-cancellation CQS queues and two counters generalize the
//! balance-counter rendezvous of the facade's `RendezvousChannel`:
//!
//! * `size` (pool discipline): positive counts buffered elements,
//!   negative counts waiting receivers. A sender's *delivery* does
//!   `fetch_add`: a negative result licenses a direct `resume(value)` to
//!   the oldest waiting receiver, otherwise the element goes to the
//!   buffer (a [`QueueBackend`] — the same infinite-array rendezvous used
//!   by the pools).
//! * `slots` (semaphore discipline, bounded channels only): positive
//!   counts free capacity, negative counts blocked senders. `send` gates
//!   on `fetch_sub`; consuming an element releases a slot, which resumes
//!   the oldest blocked sender with a *grant*. The granted sender's
//!   element is delivered by a settlement hook
//!   ([`CqsFuture::on_settled`]) on the granting thread, preserving the
//!   sender's FIFO position, before its send future resolves.
//!
//! A slot is held by an element from acceptance until *consumption*:
//! retrieving from the buffer releases inline, a direct handoff releases
//! through the receiving future's settlement hook. Rendezvous channels
//! invert the rule — a waiting receiver *is* the capacity, so suspending
//! a receiver releases a slot and cancelling it takes the release back.
//!
//! # Ordering
//!
//! With one sender and one receiver the channel is strictly FIFO — the
//! core checked against the `ChannelLin` sequential model: each delivery
//! completes (direct hand-off or buffer insert) before the sender's next
//! send begins, so elements arrive in send order. Three edges outside
//! that core are deliberately relaxed, trading strict order for
//! conservation:
//!
//! * **Concurrent receivers** are ranked by the order their waiters reach
//!   the receiver queue, not by the order their claims hit the counter: a
//!   receiver descheduled between the two can let an element destined for
//!   it be eliminated by a receiver that suspends earlier.
//! * **A refused hand-off** (receive cancellation losing its race against
//!   an in-flight delivery) re-pockets the element at the buffer tail,
//!   behind elements accepted after it. Kotlin's channels drop the
//!   element in this situation; re-pocketing keeps conservation exact at
//!   the cost of order at that edge.
//! * **A broken insert** (a receiver's claim racing a delivery that has
//!   announced on the counter but not yet landed in the buffer breaks
//!   the paired slot) makes the delivery re-announce and re-pocket at
//!   the tail — so with concurrent senders an element can slip behind
//!   one accepted after it. The standing claim and the re-announcement
//!   cancel on the counter, keeping the ledger exact.
//!
//! # Cancellation and close
//!
//! Both sides abort through the smart-cancellation path (paper, §5): a
//! cancelled waiter either deregisters (`CANCELLED`) or — when a
//! delivery already committed to it — refuses the resume (`REFUSE`), and
//! the refused element re-enters the channel for the next receiver.
//! Cancellation therefore never loses elements.
//!
//! [`close`](CqsChannel::close) sweeps both waiter queues through the
//! normal CQS cancellation sweep: waiting receivers resolve
//! [`RecvError::Closed`], blocked senders resolve with their element
//! handed back ([`SendError::Closed`]), and the buffered elements come
//! back as `close`'s return value. Sends racing the close may land
//! elements after the sweep; those are parked as *orphans* and retrieved
//! with [`drain`](CqsChannel::drain) once the racing operations finish —
//! at quiescence, every element sent is accounted for exactly once:
//! delivered to a receiver, returned by `close`/`drain`, or handed back
//! in a `SendError`.

use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::sync::{Arc, Mutex, Weak};

use cqs_core::{CancellationMode, Cqs, CqsCallbacks, CqsConfig, ResumeMode, Suspend};
use cqs_future::{Cancelled, CqsFuture, FutureState, Request};
use cqs_pool::{PoolBackend, QueueBackend};
use cqs_stats::CachePadded;

/// A send failed; the element comes back inside the error.
pub enum SendError<T> {
    /// The channel was closed before the element was accepted.
    Closed(T),
    /// The send was aborted by [`ChannelSend::cancel`] (or a timeout).
    Cancelled(T),
    /// The channel was [poisoned](CqsChannel::poison) — a participant
    /// crashed mid-operation — before the element was accepted.
    Poisoned(T),
}

impl<T> SendError<T> {
    /// Recovers the element that was not sent.
    pub fn into_inner(self) -> T {
        match self {
            SendError::Closed(v) | SendError::Cancelled(v) | SendError::Poisoned(v) => v,
        }
    }
}

impl<T> std::fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SendError::Closed(_) => f.write_str("SendError::Closed(..)"),
            SendError::Cancelled(_) => f.write_str("SendError::Cancelled(..)"),
            SendError::Poisoned(_) => f.write_str("SendError::Poisoned(..)"),
        }
    }
}

impl<T> std::fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SendError::Closed(_) => f.write_str("channel closed; the element was returned"),
            SendError::Cancelled(_) => f.write_str("send cancelled; the element was returned"),
            SendError::Poisoned(_) => f.write_str("channel poisoned; the element was returned"),
        }
    }
}

impl<T> std::error::Error for SendError<T> {}

/// A receive completed without an element.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RecvError {
    /// The channel was closed while (or before) the receive waited.
    Closed,
    /// The receive was aborted by [`ChannelRecv::cancel`] or a timeout.
    Cancelled,
    /// The channel was [poisoned](CqsChannel::poison) — a participant
    /// crashed mid-operation — while (or before) the receive waited.
    Poisoned,
}

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecvError::Closed => f.write_str("channel closed"),
            RecvError::Cancelled => f.write_str("receive cancelled"),
            RecvError::Poisoned => f.write_str("channel poisoned"),
        }
    }
}

impl std::error::Error for RecvError {}

/// Callbacks of the receiver queue (`Cqs<T, _>`): `size` bookkeeping for
/// cancelled receivers and re-routing of refused deliveries.
struct RecvCallbacks<T: Send + 'static> {
    shared: Weak<ChannelShared<T>>,
}

impl<T: Send + 'static> CqsCallbacks<T> for RecvCallbacks<T> {
    fn on_cancellation(&self) -> bool {
        let Some(shared) = self.shared.upgrade() else {
            // The channel is gone; no delivery can be in flight.
            return true;
        };
        // Either deregister a waiting receiver or (s >= 0) acknowledge
        // that a delivery already committed to this cell — the element is
        // counted back into the channel by this very increment, and the
        // refused resume re-routes it.
        let s = shared.size.fetch_add(1, Ordering::SeqCst);
        let deregistered = s < 0;
        if deregistered && shared.capacity == Some(0) {
            // Rendezvous: the receiver's presence was the capacity; take
            // the slot released at suspension back. If a sender was
            // granted on its strength in the meantime, the grant still
            // delivers — the element parks in the side-pocket buffer for
            // the next receiver, so nothing is lost (see module docs).
            shared.slots.fetch_sub(1, Ordering::SeqCst);
        }
        deregistered
    }

    fn complete_refused_resume(&self, element: T) {
        let Some(shared) = self.shared.upgrade() else {
            return; // channel gone; drop the element with it
        };
        cqs_stats::bump!(channel_refused_redeliveries);
        // `on_cancellation` already counted the element back into `size`,
        // so store it without another increment; a broken slot means a
        // racing retrieve gave up its claim, which `deliver` re-counts.
        if let Err(back) = shared.buffer.try_insert(element) {
            shared.deliver(back);
        }
    }
}

/// Callbacks of the blocked-sender queue (`Cqs<(), _>`): pure semaphore
/// discipline on `slots`.
struct SendCallbacks {
    slots: Arc<CachePadded<AtomicI64>>,
}

impl CqsCallbacks<()> for SendCallbacks {
    fn on_cancellation(&self) -> bool {
        // Either return the would-be slot or deregister the blocked
        // sender; s >= 0 means a grant already committed to this sender
        // and the refused grant's slot is re-banked by this increment.
        let s = self.slots.fetch_add(1, Ordering::SeqCst);
        s < 0
    }

    fn complete_refused_resume(&self, _grant: ()) {
        // The slot went back into `slots` in on_cancellation already.
    }
}

struct ChannelShared<T: Send + 'static> {
    /// Pool discipline: `> 0` elements stored (buffer), `< 0` waiting
    /// receivers (negated).
    size: CachePadded<AtomicI64>,
    /// Semaphore discipline (bounded channels only): `> 0` free capacity,
    /// `<= 0` blocked senders (negated). Unused when unbounded.
    slots: Arc<CachePadded<AtomicI64>>,
    /// `None` = unbounded, `Some(0)` = rendezvous.
    capacity: Option<i64>,
    /// Element storage; also the rendezvous side-pocket for elements
    /// re-routed by cancel/close races.
    buffer: QueueBackend<T>,
    /// Waiting receivers; resumed directly with elements.
    receivers: Cqs<T, RecvCallbacks<T>>,
    /// Blocked senders; resumed with capacity grants.
    senders: Cqs<(), SendCallbacks>,
    closed: AtomicBool,
    /// Set (before `closed`) when a participant crashed mid-operation;
    /// distinguishes [`SendError::Poisoned`]/[`RecvError::Poisoned`] from
    /// the orderly `Closed` outcomes.
    poisoned: AtomicBool,
    /// Elements claimed back from the buffer after `closed` flipped;
    /// returned by `close()` / `drain()`.
    orphans: Mutex<Vec<T>>,
}

impl<T: Send + 'static> ChannelShared<T> {
    /// Puts an element into the channel: hands it to the oldest waiting
    /// receiver if one is counted, stores it otherwise. Exactly the
    /// pool's `put` loop — a failed insert means a racing retrieve broke
    /// the slot and gave its claim back, so the loop re-counts.
    fn deliver(&self, element: T) {
        let mut staged = Some(element);
        self.fault_window("channel.deliver.fault.pre-count", &mut staged);
        let Some(mut element) = staged else {
            return; // unreachable: the window rethrows after recovery
        };
        loop {
            cqs_chaos::inject!("channel.deliver.pre-count");
            let s = self.size.fetch_add(1, Ordering::SeqCst);
            if s < 0 {
                cqs_chaos::inject!("channel.deliver.pre-resume");
                cqs_stats::bump!(channel_direct_handoffs);
                self.receivers
                    .resume(element)
                    .unwrap_or_else(|_| unreachable!("smart async resume cannot fail"));
                return;
            }
            cqs_stats::bump!(channel_buffered_handoffs);
            match self.buffer.try_insert(element) {
                Ok(()) => return,
                Err(back) => {
                    element = back;
                    std::hint::spin_loop();
                }
            }
        }
    }

    /// Releases one capacity slot, granting the oldest blocked sender if
    /// there is one. Bounded channels only.
    fn release_slot(&self) {
        cqs_chaos::inject!("channel.slot.pre-release");
        let s = self.slots.fetch_add(1, Ordering::SeqCst);
        if s < 0 {
            self.senders
                .resume(())
                .unwrap_or_else(|_| unreachable!("smart async resume cannot fail"));
        }
    }

    /// After `closed` flipped: claim every stored element into `orphans`
    /// so `close()`/`drain()` can return them. Claims follow the pool
    /// discipline — an empty slot under a positive count means a racing
    /// deliver has announced but not inserted yet; breaking the slot
    /// makes that deliver restart, and its restart re-increments for our
    /// standing decrement.
    fn sweep_buffer_into_orphans(&self) {
        loop {
            cqs_chaos::inject!("channel.close.pre-sweep");
            let r = self.size.fetch_sub(1, Ordering::SeqCst);
            if r <= 0 {
                self.size.fetch_add(1, Ordering::SeqCst);
                return;
            }
            if let Some(v) = self.buffer.try_retrieve() {
                cqs_stats::bump!(channel_orphaned);
                self.orphans
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .push(v);
            } else {
                std::thread::yield_now();
            }
        }
    }

    /// A crash unwound through an inline slot release while the caller's
    /// receive future may already hold a delivered element (a sender
    /// eliminated with the freshly-suspended cell before the unwind).
    /// Move the element into the orphan list — conserving it for
    /// [`CqsChannel::drain`] — so the unwind does not drop it along with
    /// the future.
    fn rescue_settled_value(&self, f: &mut CqsFuture<T>) {
        if let FutureState::Ready(v) = f.try_get() {
            cqs_stats::bump!(channel_orphaned);
            self.orphans
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .push(v);
        }
    }

    /// Crash window for the chaos fault injector: when the armed fault
    /// fires at `label`, the staged element (if any) is parked in
    /// `orphans` — conserving it for [`CqsChannel::drain`] — and the
    /// channel is poisoned before the panic resumes. Compiles to a no-op
    /// without the `chaos` feature.
    #[cfg(feature = "chaos")]
    fn fault_window(&self, label: &'static str, element: &mut Option<T>) {
        if let Err(panic) = std::panic::catch_unwind(|| cqs_chaos::fault!(label)) {
            if let Some(v) = element.take() {
                cqs_stats::bump!(channel_orphaned);
                self.orphans
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .push(v);
            }
            self.poison();
            std::panic::resume_unwind(panic);
        }
    }

    #[cfg(not(feature = "chaos"))]
    fn fault_window(&self, _label: &'static str, _element: &mut Option<T>) {}

    /// First-closer protocol shared by close and poison: flips `closed`,
    /// sweeps both waiter queues and claims the buffer into `orphans`.
    /// Returns whether this call was the one that performed the sweep.
    ///
    /// Each sweep step runs even if an earlier one panics (an injected
    /// crash fault, or a panicking waker, can unwind out of a queue
    /// sweep): stopping mid-cascade would leave the *other* queue's
    /// waiters parked on a channel nobody will close again — the flag is
    /// already flipped. The first panic re-raises after every step ran.
    fn close_internal(&self) -> bool {
        if self.closed.swap(true, Ordering::SeqCst) {
            return false;
        }
        cqs_chaos::inject!("channel.close.pre-sweep");
        let mut first: Option<Box<dyn std::any::Any + Send>> = None;
        let steps: [&(dyn Fn() + Sync); 3] = [
            &|| self.senders.close(),
            &|| self.receivers.close(),
            &|| self.sweep_buffer_into_orphans(),
        ];
        for step in steps {
            if let Err(panic) = std::panic::catch_unwind(std::panic::AssertUnwindSafe(step)) {
                first.get_or_insert(panic);
            }
        }
        if let Some(panic) = first {
            self.poisoned.store(true, Ordering::SeqCst);
            std::panic::resume_unwind(panic);
        }
        true
    }

    /// Poisons the channel: flags it (before `closed`, so every waiter the
    /// sweep wakes already observes the poison), poisons both waiter
    /// queues — publishing their `poisoned` watch gauges — and runs the
    /// close sweep. Buffered elements are conserved in `orphans`.
    ///
    /// Like [`close_internal`](Self::close_internal), the cascade is
    /// crash-tolerant: a panic in one queue's poison sweep must not leave
    /// the other queue un-poisoned with its waiters stranded.
    fn poison(&self) {
        self.poisoned.store(true, Ordering::SeqCst);
        let mut first: Option<Box<dyn std::any::Any + Send>> = None;
        let steps: [&(dyn Fn() + Sync); 3] = [
            &|| self.receivers.poison(),
            &|| self.senders.poison(),
            &|| {
                self.close_internal();
            },
        ];
        for step in steps {
            if let Err(panic) = std::panic::catch_unwind(std::panic::AssertUnwindSafe(step)) {
                first.get_or_insert(panic);
            }
        }
        if let Some(panic) = first {
            std::panic::resume_unwind(panic);
        }
    }
}

/// A fair MPMC channel built natively on CQS: rendezvous, bounded or
/// unbounded, with cancellable sends *and* receives and a `close()` that
/// returns the unsent elements. See the module docs for the design.
///
/// # Example
///
/// ```
/// use cqs_channel::CqsChannel;
///
/// let ch = CqsChannel::bounded(2);
/// ch.send(1).wait().unwrap();
/// ch.send(2).wait().unwrap();
/// assert_eq!(ch.receive().wait(), Ok(1));
/// assert_eq!(ch.receive().wait(), Ok(2));
/// let unsent = ch.close();
/// assert!(unsent.is_empty());
/// ```
pub struct CqsChannel<T: Send + 'static> {
    shared: Arc<ChannelShared<T>>,
}

impl<T: Send + 'static> CqsChannel<T> {
    fn with_capacity(capacity: Option<i64>) -> Self {
        Self::build(capacity, None)
    }

    fn build(capacity: Option<i64>, reclaimer: Option<cqs_core::ReclaimerKind>) -> Self {
        let slots = Arc::new(CachePadded::new(AtomicI64::new(capacity.unwrap_or(0))));
        let mut recv_config = CqsConfig::new()
            .resume_mode(ResumeMode::Asynchronous)
            .cancellation_mode(CancellationMode::Smart)
            .label("channel.recv");
        let mut send_config = CqsConfig::new()
            .resume_mode(ResumeMode::Asynchronous)
            .cancellation_mode(CancellationMode::Smart)
            .label("channel.send");
        if let Some(kind) = reclaimer {
            recv_config = recv_config.reclaimer(kind);
            send_config = send_config.reclaimer(kind);
        }
        let shared = Arc::new_cyclic(|weak: &Weak<ChannelShared<T>>| ChannelShared {
            size: CachePadded::new(AtomicI64::new(0)),
            slots: Arc::clone(&slots),
            capacity,
            buffer: QueueBackend::new(),
            receivers: Cqs::new(
                recv_config,
                RecvCallbacks {
                    shared: Weak::clone(weak),
                },
            ),
            senders: Cqs::new(
                send_config,
                SendCallbacks {
                    slots: Arc::clone(&slots),
                },
            ),
            closed: AtomicBool::new(false),
            poisoned: AtomicBool::new(false),
            orphans: Mutex::new(Vec::new()),
        });
        CqsChannel { shared }
    }

    /// A rendezvous channel: no buffer, every send completes by direct
    /// handoff to a receiver.
    pub fn rendezvous() -> Self {
        Self::with_capacity(Some(0))
    }

    /// A channel buffering at most `capacity` elements; `bounded(0)` is a
    /// [`rendezvous`](Self::rendezvous) channel.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` exceeds `i64::MAX` (not reachable on real
    /// machines).
    pub fn bounded(capacity: usize) -> Self {
        Self::with_capacity(Some(
            i64::try_from(capacity).expect("channel capacity exceeds i64"),
        ))
    }

    /// A channel whose sends never suspend.
    pub fn unbounded() -> Self {
        Self::with_capacity(None)
    }

    /// Like [`bounded`](Self::bounded), but both waiter queues use the
    /// given memory-reclamation backend instead of the process-wide
    /// [`cqs_core::default_reclaimer`]. `bounded_with_reclaimer(0, ..)` is
    /// a rendezvous channel.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` exceeds `i64::MAX`.
    pub fn bounded_with_reclaimer(capacity: usize, reclaimer: cqs_core::ReclaimerKind) -> Self {
        Self::build(
            Some(i64::try_from(capacity).expect("channel capacity exceeds i64")),
            Some(reclaimer),
        )
    }

    /// Like [`unbounded`](Self::unbounded), but the receiver queue uses
    /// the given memory-reclamation backend instead of the process-wide
    /// [`cqs_core::default_reclaimer`].
    pub fn unbounded_with_reclaimer(reclaimer: cqs_core::ReclaimerKind) -> Self {
        Self::build(None, Some(reclaimer))
    }

    /// The configured capacity; `None` when unbounded.
    pub fn capacity(&self) -> Option<usize> {
        self.shared.capacity.map(|c| c as usize)
    }

    /// Sends `element`. The returned future is immediate while capacity
    /// (or a waiting receiver) is available; otherwise it resolves when a
    /// receiver frees a slot — or fails with the element handed back if
    /// the channel is closed or the send is cancelled first.
    pub fn send(&self, element: T) -> ChannelSend<T> {
        cqs_stats::bump!(channel_sends);
        let shared = &self.shared;
        if shared.closed.load(Ordering::SeqCst) {
            return ChannelSend::rejected(element, &self.shared);
        }
        if shared.capacity.is_some() {
            cqs_chaos::inject!("channel.send.pre-gate");
            let s = shared.slots.fetch_sub(1, Ordering::SeqCst);
            if s <= 0 {
                return self.blocked_send(element);
            }
        }
        shared.deliver(element);
        cqs_chaos::inject!("channel.send.post-deliver");
        if shared.closed.load(Ordering::SeqCst) {
            // A close() raced past our entry check; make sure the element
            // is not stranded in a buffer nobody will drain — whatever is
            // still stored moves to the orphan list `drain()` returns.
            shared.sweep_buffer_into_orphans();
        }
        ChannelSend::accepted(&self.shared)
    }

    /// Slow path of [`send`](Self::send): queue on the sender CQS and
    /// stage the element; the granting thread delivers it.
    fn blocked_send(&self, element: T) -> ChannelSend<T> {
        cqs_stats::bump!(channel_blocked_sends);
        let shared = &self.shared;
        let grant = match shared.senders.suspend() {
            Suspend::Future(f) => f,
            Suspend::Broken => unreachable!("channel uses asynchronous resumption"),
        };
        let staged = Arc::new(Mutex::new(Some(element)));
        let public = Arc::new(Request::<()>::new());
        let hook_staged = Arc::clone(&staged);
        let hook_public = Arc::clone(&public);
        let weak = Arc::downgrade(shared);
        grant.on_settled(move |granted| {
            cqs_chaos::inject!("channel.grant.pre-deliver");
            let Some(shared) = weak.upgrade() else {
                hook_public.cancel();
                return;
            };
            if !granted {
                // Cancelled or closed: the element stays staged for the
                // sender to recover through the SendError.
                hook_public.cancel();
                return;
            }
            // Take the element in its own statement: a `match` on the
            // locked expression would hold the guard for the whole body,
            // and a crash inside the delivery below would poison the
            // staged mutex the sender still needs for error recovery.
            let taken = hook_staged
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .take();
            match taken {
                Some(element) => {
                    // Deliver *before* resolving the send — a sender that
                    // observes its send complete may immediately send
                    // again, and its elements must stay ordered.
                    //
                    // A crash inside the delivery (an injected fault, a
                    // panicking downstream waker) must still settle the
                    // sender: `public` lives outside every CQS queue, so
                    // no poison sweep can reach it — an unsettled request
                    // here parks the sender forever. The crashed element
                    // is already conserved in the orphan list, so cancel
                    // resolves the send as accepted (staged is empty),
                    // exactly like a buffered element outliving a close.
                    let delivered = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        shared.deliver(element);
                        if shared.closed.load(Ordering::SeqCst) {
                            shared.sweep_buffer_into_orphans();
                        }
                    }));
                    match delivered {
                        Ok(()) => {
                            let _ = hook_public.complete(());
                        }
                        Err(panic) => {
                            hook_public.cancel();
                            std::panic::resume_unwind(panic);
                        }
                    }
                }
                None => {
                    // The sender reclaimed the element (timeout racing the
                    // grant); give the granted slot back. Settle `public`
                    // first — releasing the slot can grant another sender
                    // whose delivery crashes, and that unwind must not
                    // leave this request unsettled.
                    hook_public.cancel();
                    shared.release_slot();
                }
            }
        });
        ChannelSend {
            inner: CqsFuture::suspended(public),
            staged,
            grant: Some(grant),
            channel: Arc::downgrade(shared),
        }
    }

    /// Receives the oldest element: immediately while the buffer is
    /// non-empty, otherwise when a sender delivers one (FIFO among
    /// waiting receivers). Cancel the returned future to abort waiting.
    pub fn receive(&self) -> ChannelRecv<T> {
        cqs_stats::bump!(channel_recvs);
        let shared = &self.shared;
        loop {
            if shared.closed.load(Ordering::SeqCst) {
                return ChannelRecv {
                    inner: CqsFuture::cancelled(),
                    channel: Arc::downgrade(shared),
                };
            }
            cqs_chaos::inject!("channel.recv.pre-claim");
            let r = shared.size.fetch_sub(1, Ordering::SeqCst);
            if r > 0 {
                cqs_chaos::inject!("channel.recv.pre-retrieve");
                if let Some(element) = shared.buffer.try_retrieve() {
                    cqs_stats::bump!(immediate_hits);
                    if shared.capacity.is_some() && shared.capacity != Some(0) {
                        // The element's slot frees on consumption. (At
                        // rendezvous capacity, pocketed elements hold no
                        // slot — receiver presence is the capacity.)
                        //
                        // Freeing the slot may grant a parked sender and run
                        // its delivery inline; if that delivery crashes, the
                        // unwind must not drop the element we just popped —
                        // park it in the orphan list (the crash already
                        // poisoned, hence closed, the channel) so `drain()`
                        // recovers it.
                        let mut staged = Some(element);
                        if let Err(panic) =
                            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                shared.release_slot()
                            }))
                        {
                            if let Some(v) = staged.take() {
                                cqs_stats::bump!(channel_orphaned);
                                shared
                                    .orphans
                                    .lock()
                                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                                    .push(v);
                            }
                            std::panic::resume_unwind(panic);
                        }
                        let element = staged.take().expect("element consumed without a panic");
                        return ChannelRecv {
                            inner: CqsFuture::immediate(element),
                            channel: Arc::downgrade(shared),
                        };
                    }
                    return ChannelRecv {
                        inner: CqsFuture::immediate(element),
                        channel: Arc::downgrade(shared),
                    };
                }
                // Announced but not inserted yet — the standing decrement
                // is absorbed by the deliverer's restart; claim afresh.
                continue;
            }
            let mut f = match shared.receivers.suspend() {
                Suspend::Future(f) => f,
                Suspend::Broken => unreachable!("channel uses asynchronous resumption"),
            };
            match shared.capacity {
                Some(0) => {
                    // Rendezvous: a waiting receiver is one slot of
                    // capacity; this is what unblocks the paired sender.
                    // The release can hand a sender's element straight to
                    // this receiver's cell and then unwind (injected
                    // fault); the element is already inside `f`, so it
                    // must be rescued before the unwind drops the future.
                    if let Err(panic) =
                        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            shared.release_slot()
                        }))
                    {
                        shared.rescue_settled_value(&mut f);
                        std::panic::resume_unwind(panic);
                    }
                }
                Some(_) => {
                    // Bounded: release the element's slot when (and only
                    // when) this receiver is actually delivered to — on
                    // the delivering thread, independent of whether the
                    // caller ever waits. If the future is already settled
                    // (a sender eliminated with our cell before the hook
                    // was registered) the hook runs inline here and the
                    // slot release can unwind through us with the element
                    // inside `f` — rescue it rather than drop it.
                    let weak = Arc::downgrade(shared);
                    if let Err(panic) =
                        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            f.on_settled(move |delivered| {
                                if delivered {
                                    if let Some(shared) = weak.upgrade() {
                                        shared.release_slot();
                                    }
                                }
                            });
                        }))
                    {
                        shared.rescue_settled_value(&mut f);
                        std::panic::resume_unwind(panic);
                    }
                }
                None => {}
            }
            return ChannelRecv {
                inner: f,
                channel: Arc::downgrade(shared),
            };
        }
    }

    /// Closes the channel and returns the elements that were buffered:
    /// waiting receivers resolve [`RecvError::Closed`], blocked senders
    /// resolve [`SendError::Closed`] with their elements handed back, and
    /// subsequent sends and receives fail fast. Closing again returns an
    /// empty vector; racing sends that land after the sweep are parked
    /// for [`drain`](Self::drain).
    pub fn close(&self) -> Vec<T> {
        if !self.shared.close_internal() {
            return Vec::new();
        }
        std::mem::take(
            &mut *self
                .shared
                .orphans
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        )
    }

    /// Poisons the channel: like [`close`](Self::close), but pending and
    /// subsequent operations fail with [`SendError::Poisoned`] /
    /// [`RecvError::Poisoned`] instead of the orderly `Closed` outcomes.
    /// Use when a participant crashed mid-protocol and in-flight elements
    /// may reflect inconsistent state. Buffered elements are conserved:
    /// retrieve them with [`drain`](Self::drain).
    pub fn poison(&self) {
        self.shared.poison();
    }

    /// Whether the channel was poisoned — by [`poison`](Self::poison), by
    /// an injected crash fault, or by a panic escaping one of the waiter
    /// queues' batched paths. A poisoned channel is always also
    /// [closed](Self::is_closed).
    pub fn is_poisoned(&self) -> bool {
        self.shared.poisoned.load(Ordering::SeqCst)
            || self.shared.receivers.is_poisoned()
            || self.shared.senders.is_poisoned()
    }

    /// Collects elements stranded by sends that raced [`close`](Self::close): claims
    /// whatever the buffer still holds plus the orphan list. Returns an
    /// empty vector on an open channel. At quiescence (no send/receive in
    /// flight), `close()` and `drain()` together account for every
    /// element that was neither delivered nor handed back in an error.
    pub fn drain(&self) -> Vec<T> {
        let shared = &self.shared;
        if !shared.closed.load(Ordering::SeqCst) {
            return Vec::new();
        }
        shared.sweep_buffer_into_orphans();
        std::mem::take(
            &mut *shared
                .orphans
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        )
    }

    /// Whether [`close`](Self::close) was called.
    pub fn is_closed(&self) -> bool {
        self.shared.closed.load(Ordering::SeqCst)
    }

    /// Blocking convenience: sends `element`, aborting the queued send if
    /// `timeout` elapses first. Equivalent to
    /// `self.send(element).wait_timeout(timeout)` — if the abort loses to
    /// an in-flight capacity grant, the element *is* delivered and the
    /// send reports success (see [`ChannelSend::wait_timeout`]).
    ///
    /// # Errors
    ///
    /// [`SendError::Cancelled`] with the element handed back on timeout,
    /// [`SendError::Closed`] / [`SendError::Poisoned`] if the channel
    /// closed or was poisoned while waiting.
    pub fn send_timeout(
        &self,
        element: T,
        timeout: std::time::Duration,
    ) -> Result<(), SendError<T>> {
        self.send(element).wait_timeout(timeout)
    }

    /// Blocking convenience: receives the oldest element, aborting the
    /// waiting receive if `timeout` elapses first. Equivalent to
    /// `self.receive().wait_timeout(timeout)` — if the abort loses to an
    /// in-flight delivery, the element is returned, never dropped (see
    /// [`ChannelRecv::wait_timeout`]).
    ///
    /// # Errors
    ///
    /// [`RecvError::Cancelled`] on timeout, [`RecvError::Closed`] /
    /// [`RecvError::Poisoned`] if the channel closed or was poisoned while
    /// waiting.
    pub fn receive_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvError> {
        self.receive().wait_timeout(timeout)
    }

    /// A racy snapshot of the number of stored elements.
    pub fn len(&self) -> usize {
        self.shared.size.load(Ordering::SeqCst).max(0) as usize
    }

    /// Whether the channel currently stores no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// An id keying this channel's receiver queue in `cqs-watch` reports.
    pub fn watch_id(&self) -> u64 {
        self.shared.receivers.watch_id()
    }
}

impl<T: Send + 'static> Clone for CqsChannel<T> {
    fn clone(&self) -> Self {
        CqsChannel {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T: Send + 'static> std::fmt::Debug for CqsChannel<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CqsChannel")
            .field("capacity", &self.shared.capacity)
            .field("size", &self.shared.size.load(Ordering::Relaxed))
            .field("closed", &self.shared.closed.load(Ordering::Relaxed))
            .finish()
    }
}

/// The pending side of [`CqsChannel::send`]: resolves once the element is
/// in the channel (buffered or handed to a receiver), fails with the
/// element handed back on close or cancellation. Implements
/// [`std::future::Future`].
pub struct ChannelSend<T: Send + 'static> {
    /// Completes *after* the element is delivered (see `blocked_send`).
    inner: CqsFuture<()>,
    /// Holds the element while the send is queued; emptied at delivery.
    staged: Arc<Mutex<Option<T>>>,
    /// The CQS waiter (capacity grant); `None` on the immediate paths.
    grant: Option<CqsFuture<()>>,
    channel: Weak<ChannelShared<T>>,
}

impl<T: Send + 'static> ChannelSend<T> {
    fn accepted(shared: &Arc<ChannelShared<T>>) -> Self {
        ChannelSend {
            inner: CqsFuture::immediate(()),
            staged: Arc::new(Mutex::new(None)),
            grant: None,
            channel: Arc::downgrade(shared),
        }
    }

    fn rejected(element: T, shared: &Arc<ChannelShared<T>>) -> Self {
        ChannelSend {
            inner: CqsFuture::cancelled(),
            staged: Arc::new(Mutex::new(Some(element))),
            grant: None,
            channel: Arc::downgrade(shared),
        }
    }

    /// Whether the element was accepted without waiting.
    pub fn is_immediate(&self) -> bool {
        self.inner.is_immediate()
    }

    /// Aborts a queued send. Returns `true` if this call aborted it — the
    /// element is then recovered through [`wait`](Self::wait)'s error.
    /// Sends that were accepted immediately cannot be cancelled.
    pub fn cancel(&self) -> bool {
        match &self.grant {
            Some(grant) => grant.cancel(),
            None => false,
        }
    }

    fn failure(
        staged: &Mutex<Option<T>>,
        channel: &Weak<ChannelShared<T>>,
        fallback_cancelled: bool,
    ) -> Result<(), SendError<T>> {
        match staged
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .take()
        {
            // The element was delivered after all (the resolution raced a
            // grant): the send succeeded.
            None => Ok(()),
            Some(v) => {
                let (closed, poisoned) = match channel.upgrade() {
                    Some(s) => (
                        s.closed.load(Ordering::SeqCst),
                        s.poisoned.load(Ordering::SeqCst),
                    ),
                    None => (true, false),
                };
                if fallback_cancelled || !closed {
                    Err(SendError::Cancelled(v))
                } else if poisoned {
                    Err(SendError::Poisoned(v))
                } else {
                    Err(SendError::Closed(v))
                }
            }
        }
    }

    /// Blocks until the element is accepted.
    ///
    /// # Errors
    ///
    /// [`SendError`] with the element handed back if the channel closed
    /// first or the send was cancelled.
    pub fn wait(self) -> Result<(), SendError<T>> {
        let ChannelSend {
            inner,
            staged,
            grant: _grant,
            channel,
        } = self;
        match inner.wait() {
            Ok(()) => Ok(()),
            Err(Cancelled) => Self::failure(&staged, &channel, false),
        }
    }

    /// Like [`wait`](Self::wait) with a deadline: on expiry the queued
    /// send is aborted and the element handed back; if the abort loses to
    /// a concurrent grant, the element is delivered and the send reports
    /// success.
    ///
    /// # Errors
    ///
    /// [`SendError::Cancelled`] with the element on timeout,
    /// [`SendError::Closed`] if the channel closed while waiting.
    pub fn wait_timeout(self, timeout: std::time::Duration) -> Result<(), SendError<T>> {
        let ChannelSend {
            inner,
            staged,
            grant,
            channel,
        } = self;
        match grant {
            None => match inner.wait() {
                Ok(()) => Ok(()),
                Err(Cancelled) => Self::failure(&staged, &channel, false),
            },
            Some(grant) => {
                // Wait on the *public* future, but abort through the
                // grant: cancelling the public side alone would let a
                // late grant deliver an element the caller was told came
                // back.
                match inner.wait_timeout(timeout) {
                    Ok(()) => Ok(()),
                    Err(Cancelled) => {
                        let timed_out = grant.cancel();
                        Self::failure(&staged, &channel, timed_out)
                    }
                }
            }
        }
    }
}

impl<T: Send + 'static> std::future::Future for ChannelSend<T> {
    type Output = Result<(), SendError<T>>;

    fn poll(
        mut self: std::pin::Pin<&mut Self>,
        cx: &mut std::task::Context<'_>,
    ) -> std::task::Poll<Self::Output> {
        let this = &mut *self;
        match std::pin::Pin::new(&mut this.inner).poll(cx) {
            std::task::Poll::Pending => std::task::Poll::Pending,
            std::task::Poll::Ready(Ok(())) => std::task::Poll::Ready(Ok(())),
            std::task::Poll::Ready(Err(Cancelled)) => {
                std::task::Poll::Ready(Self::failure(&this.staged, &this.channel, false))
            }
        }
    }
}

impl<T: Send + 'static> std::fmt::Debug for ChannelSend<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChannelSend")
            .field("inner", &self.inner)
            .finish_non_exhaustive()
    }
}

/// The pending side of [`CqsChannel::receive`]: completes with the
/// element. Implements [`std::future::Future`].
///
/// Capacity accounting happens at delivery (on the delivering thread), so
/// dropping a delivered `ChannelRecv` without waiting never leaks a
/// capacity slot — though the element inside is lost with the future.
pub struct ChannelRecv<T: Send + 'static> {
    inner: CqsFuture<T>,
    channel: Weak<ChannelShared<T>>,
}

impl<T: Send + 'static> ChannelRecv<T> {
    fn error(channel: &Weak<ChannelShared<T>>) -> RecvError {
        match channel.upgrade() {
            None => RecvError::Closed,
            Some(s) => {
                if s.poisoned.load(Ordering::SeqCst) {
                    RecvError::Poisoned
                } else if s.closed.load(Ordering::SeqCst) {
                    RecvError::Closed
                } else {
                    RecvError::Cancelled
                }
            }
        }
    }

    /// Whether an element was available without waiting.
    pub fn is_immediate(&self) -> bool {
        self.inner.is_immediate()
    }

    /// Non-blocking observation; takes the element if one was delivered.
    ///
    /// # Panics
    ///
    /// Panics if a previous call already returned the element.
    pub fn try_get(&mut self) -> FutureState<T> {
        self.inner.try_get()
    }

    /// Aborts the waiting receive. Returns `true` if this call aborted
    /// it; a delivery that already committed wins the race and the
    /// element remains claimable.
    pub fn cancel(&self) -> bool {
        self.inner.cancel()
    }

    /// Blocks until an element arrives.
    ///
    /// # Errors
    ///
    /// [`RecvError::Closed`] if the channel closed, otherwise
    /// [`RecvError::Cancelled`] if [`cancel`](Self::cancel) won first.
    pub fn wait(self) -> Result<T, RecvError> {
        let ChannelRecv { inner, channel } = self;
        match inner.wait() {
            Ok(v) => Ok(v),
            Err(Cancelled) => Err(Self::error(&channel)),
        }
    }

    /// Like [`wait`](Self::wait) with a deadline; on timeout the waiting
    /// receive is aborted through the smart-cancellation path. If the
    /// abort loses to a concurrent delivery, the element is returned —
    /// never dropped.
    ///
    /// # Errors
    ///
    /// [`RecvError::Cancelled`] on timeout, [`RecvError::Closed`] if the
    /// channel closed while waiting.
    pub fn wait_timeout(self, timeout: std::time::Duration) -> Result<T, RecvError> {
        cqs_chaos::inject!("channel.recv.timeout-window");
        let ChannelRecv { inner, channel } = self;
        match inner.wait_timeout(timeout) {
            Ok(v) => Ok(v),
            Err(Cancelled) => Err(Self::error(&channel)),
        }
    }
}

impl<T: Send + 'static> std::future::Future for ChannelRecv<T> {
    type Output = Result<T, RecvError>;

    fn poll(
        mut self: std::pin::Pin<&mut Self>,
        cx: &mut std::task::Context<'_>,
    ) -> std::task::Poll<Self::Output> {
        let this = &mut *self;
        match std::pin::Pin::new(&mut this.inner).poll(cx) {
            std::task::Poll::Pending => std::task::Poll::Pending,
            std::task::Poll::Ready(Ok(v)) => std::task::Poll::Ready(Ok(v)),
            std::task::Poll::Ready(Err(Cancelled)) => {
                std::task::Poll::Ready(Err(Self::error(&this.channel)))
            }
        }
    }
}

impl<T: Send + 'static> std::fmt::Debug for ChannelRecv<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChannelRecv")
            .field("inner", &self.inner)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::time::Duration;

    #[test]
    fn bounded_fifo_within_capacity() {
        let ch = CqsChannel::bounded(4);
        for v in 0..4 {
            let f = ch.send(v);
            assert!(f.is_immediate());
            f.wait().unwrap();
        }
        for v in 0..4 {
            assert_eq!(ch.receive().wait(), Ok(v));
        }
        assert!(ch.is_empty());
    }

    #[test]
    fn bounded_send_blocks_at_capacity_and_stays_ordered() {
        let ch = CqsChannel::bounded(1);
        ch.send(1).wait().unwrap();
        let b2 = ch.send(2);
        let b3 = ch.send(3);
        assert!(!b2.is_immediate());
        assert!(!b3.is_immediate());
        // Consuming 1 grants the oldest blocked sender; elements arrive
        // in send order across the blocked/immediate boundary.
        assert_eq!(ch.receive().wait(), Ok(1));
        b2.wait().unwrap();
        assert_eq!(ch.receive().wait(), Ok(2));
        b3.wait().unwrap();
        assert_eq!(ch.receive().wait(), Ok(3));
        assert!(ch.is_empty());
    }

    #[test]
    fn rendezvous_send_waits_for_receiver() {
        let ch = CqsChannel::rendezvous();
        let pending = ch.send(7);
        assert!(!pending.is_immediate(), "no receiver yet");
        let r = ch.receive();
        pending.wait().unwrap();
        assert_eq!(r.wait(), Ok(7));
    }

    #[test]
    fn rendezvous_receive_waits_for_sender() {
        let ch = std::sync::Arc::new(CqsChannel::rendezvous());
        let c2 = std::sync::Arc::clone(&ch);
        let t = std::thread::spawn(move || c2.receive().wait());
        std::thread::sleep(Duration::from_millis(10));
        ch.send(42).wait().unwrap();
        assert_eq!(t.join().unwrap(), Ok(42));
    }

    #[test]
    fn unbounded_send_never_blocks() {
        let ch = CqsChannel::unbounded();
        for v in 0..1_000 {
            assert!(ch.send(v).is_immediate());
        }
        assert_eq!(ch.len(), 1_000);
        for v in 0..1_000 {
            assert_eq!(ch.receive().wait(), Ok(v));
        }
    }

    #[test]
    fn cancel_waiting_receive() {
        let ch: CqsChannel<u32> = CqsChannel::bounded(2);
        let r = ch.receive();
        assert!(r.cancel());
        assert_eq!(r.wait(), Err(RecvError::Cancelled));
        // The channel still works: the cancelled waiter deregistered.
        ch.send(5).wait().unwrap();
        assert_eq!(ch.receive().wait(), Ok(5));
    }

    #[test]
    fn cancel_blocked_send_returns_element() {
        let ch = CqsChannel::bounded(1);
        ch.send(1).wait().unwrap();
        let blocked = ch.send(2);
        assert!(blocked.cancel());
        match blocked.wait() {
            Err(SendError::Cancelled(v)) => assert_eq!(v, 2),
            other => panic!("expected Cancelled(2), got {other:?}"),
        }
        // The slot the cancelled sender was queued for is intact.
        assert_eq!(ch.receive().wait(), Ok(1));
        assert!(ch.send(3).is_immediate());
        assert_eq!(ch.receive().wait(), Ok(3));
    }

    #[test]
    fn receive_timeout_aborts_and_channel_survives() {
        let ch: CqsChannel<u32> = CqsChannel::bounded(1);
        let r = ch.receive();
        assert_eq!(
            r.wait_timeout(Duration::from_millis(10)),
            Err(RecvError::Cancelled)
        );
        ch.send(3).wait().unwrap();
        assert_eq!(ch.receive().wait(), Ok(3));
    }

    #[test]
    fn send_timeout_returns_element() {
        let ch = CqsChannel::bounded(1);
        ch.send(1).wait().unwrap();
        match ch.send(2).wait_timeout(Duration::from_millis(10)) {
            Err(SendError::Cancelled(v)) => assert_eq!(v, 2),
            other => panic!("expected Cancelled(2), got {other:?}"),
        }
        assert_eq!(ch.receive().wait(), Ok(1));
        // Capacity intact after the timed-out send deregistered.
        assert!(ch.send(4).is_immediate());
    }

    #[test]
    fn close_returns_buffered_and_resolves_both_sides() {
        let ch = CqsChannel::bounded(2);
        ch.send(1).wait().unwrap();
        ch.send(2).wait().unwrap();
        let blocked = ch.send(3);
        assert!(!blocked.is_immediate());
        let unsent = ch.close();
        assert_eq!(unsent, vec![1, 2], "buffered elements come back");
        match blocked.wait() {
            Err(SendError::Closed(v)) => assert_eq!(v, 3),
            other => panic!("expected Closed(3), got {other:?}"),
        }
        assert!(ch.is_closed());
        assert!(ch.close().is_empty(), "closing twice returns nothing");
    }

    #[test]
    fn close_wakes_waiting_receivers() {
        let ch: std::sync::Arc<CqsChannel<u32>> = std::sync::Arc::new(CqsChannel::bounded(2));
        let c2 = std::sync::Arc::clone(&ch);
        let t = std::thread::spawn(move || c2.receive().wait());
        std::thread::sleep(Duration::from_millis(10));
        assert!(ch.close().is_empty());
        assert_eq!(t.join().unwrap(), Err(RecvError::Closed));
    }

    #[test]
    fn operations_fail_fast_after_close() {
        let ch = CqsChannel::bounded(2);
        ch.close();
        match ch.send(9).wait() {
            Err(SendError::Closed(v)) => assert_eq!(v, 9),
            other => panic!("expected Closed(9), got {other:?}"),
        }
        assert_eq!(ch.receive().wait(), Err(RecvError::Closed));
    }

    /// The analogue of the facade channel's permit-leak regression: a
    /// delivered receive dropped without `wait()` must not shrink the
    /// bounded capacity, because the slot frees at delivery.
    #[test]
    fn dropped_delivered_receive_frees_its_slot() {
        let ch = CqsChannel::bounded(1);
        for round in 0..3 {
            let f = ch.send(round);
            assert!(f.is_immediate(), "round {round}: slot leaked");
            f.wait().unwrap();
            drop(ch.receive());
        }
    }

    /// A waiting receiver dropped without `cancel()` stays registered:
    /// the next delivery commits to the abandoned future and its element
    /// is dropped with it (the documented `ChannelRecv` contract) — but
    /// the channel itself must stay healthy and closeable.
    #[test]
    fn dropped_waiting_receive_does_not_wedge_the_channel() {
        let ch: CqsChannel<u32> = CqsChannel::rendezvous();
        drop(ch.receive());
        // Delivered into the abandoned future; the send still succeeds.
        ch.send(1).wait().unwrap();
        // Pairing keeps working afterwards.
        let r = ch.receive();
        let f = ch.send(2);
        assert_eq!(r.wait(), Ok(2));
        f.wait().unwrap();
        assert!(ch.close().is_empty());
    }

    #[test]
    fn mpmc_conservation() {
        const SENDERS: usize = 4;
        const RECEIVERS: usize = 4;
        const PER_SENDER: usize = 1_000;
        for ch in [
            CqsChannel::bounded(8),
            CqsChannel::rendezvous(),
            CqsChannel::unbounded(),
        ] {
            let ch = std::sync::Arc::new(ch);
            let sum = std::sync::Arc::new(AtomicUsize::new(0));
            let mut joins = Vec::new();
            for s in 0..SENDERS {
                let ch = std::sync::Arc::clone(&ch);
                joins.push(std::thread::spawn(move || {
                    for i in 0..PER_SENDER {
                        ch.send(s * PER_SENDER + i).wait().unwrap();
                    }
                }));
            }
            for _ in 0..RECEIVERS {
                let ch = std::sync::Arc::clone(&ch);
                let sum = std::sync::Arc::clone(&sum);
                joins.push(std::thread::spawn(move || {
                    for _ in 0..SENDERS * PER_SENDER / RECEIVERS {
                        let v = ch.receive().wait().unwrap();
                        sum.fetch_add(v, std::sync::atomic::Ordering::SeqCst);
                    }
                }));
            }
            for j in joins {
                j.join().unwrap();
            }
            let n = SENDERS * PER_SENDER;
            assert_eq!(
                sum.load(std::sync::atomic::Ordering::SeqCst),
                n * (n - 1) / 2
            );
            assert!(ch.is_empty());
        }
    }

    /// Poisoning settles both sides with the dedicated error and keeps
    /// buffered elements retrievable.
    #[test]
    fn poison_fails_pending_and_future_operations() {
        let ch = CqsChannel::bounded(2);
        ch.send(1).wait().unwrap();
        ch.send(2).wait().unwrap();
        let blocked = ch.send(3);
        assert!(!blocked.is_immediate());
        ch.poison();
        assert!(ch.is_poisoned());
        assert!(ch.is_closed());
        match blocked.wait() {
            Err(SendError::Poisoned(v)) => assert_eq!(v, 3),
            other => panic!("expected Poisoned(3), got {other:?}"),
        }
        // Conservation: the buffered elements survive the poison.
        let mut returned = ch.drain();
        returned.sort_unstable();
        assert_eq!(returned, vec![1, 2]);
        // Post-poison operations fail fast with the poisoned error.
        match ch.send(9).wait() {
            Err(SendError::Poisoned(v)) => assert_eq!(v, 9),
            other => panic!("expected Poisoned(9), got {other:?}"),
        }
        assert_eq!(ch.receive().wait(), Err(RecvError::Poisoned));
    }

    #[test]
    fn poison_wakes_parked_receiver_with_poisoned() {
        let ch: std::sync::Arc<CqsChannel<u32>> = std::sync::Arc::new(CqsChannel::bounded(2));
        let c2 = std::sync::Arc::clone(&ch);
        let t = std::thread::spawn(move || c2.receive().wait());
        std::thread::sleep(Duration::from_millis(10));
        ch.poison();
        assert_eq!(t.join().unwrap(), Err(RecvError::Poisoned));
    }

    #[test]
    fn send_timeout_convenience_matches_future_path() {
        let ch = CqsChannel::bounded(1);
        ch.send_timeout(1, Duration::from_millis(50)).unwrap();
        match ch.send_timeout(2, Duration::from_millis(10)) {
            Err(SendError::Cancelled(v)) => assert_eq!(v, 2),
            other => panic!("expected Cancelled(2), got {other:?}"),
        }
        assert_eq!(ch.receive_timeout(Duration::from_millis(50)), Ok(1));
        assert_eq!(
            ch.receive_timeout(Duration::from_millis(10)),
            Err(RecvError::Cancelled)
        );
    }

    /// Concurrent close vs sends: every element ends up in exactly one
    /// sink — delivered, returned by close()/drain(), or handed back in
    /// a SendError.
    #[test]
    fn close_racing_sends_conserves_elements() {
        for round in 0..50 {
            let ch = std::sync::Arc::new(CqsChannel::bounded(2));
            let mut senders = Vec::new();
            for v in 0..4u64 {
                let ch = std::sync::Arc::clone(&ch);
                senders.push(std::thread::spawn(move || match ch.send(v).wait() {
                    Ok(()) => (1u64, 0u64),
                    Err(e) => (0, e.into_inner() + 1),
                }));
            }
            if round % 2 == 0 {
                std::thread::yield_now();
            }
            let mut returned = ch.close();
            let mut accepted = 0u64;
            let mut errored = 0u64;
            for t in senders {
                let (ok, _err) = t.join().unwrap();
                accepted += ok;
                errored += 1 - ok;
            }
            returned.extend(ch.drain());
            assert_eq!(
                returned.len() as u64 + errored,
                4,
                "round {round}: accepted={accepted} returned={returned:?} errored={errored}"
            );
            assert_eq!(returned.len() as u64, accepted, "round {round}");
        }
    }
}
