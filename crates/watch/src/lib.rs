#![warn(missing_docs)]

//! # `cqs-watch` — runtime health for the CQS stack
//!
//! The paper's headline property is *abortable* synchronization: CQS
//! cancellation removes a waiter from the queue at any time without
//! breaking fairness. This crate turns that abortability into a *recovery*
//! primitive. When the `watch` feature is enabled:
//!
//! * every CQS suspension registers a **waiter record** (primitive id +
//!   static label, owning thread, enqueue timestamp, generation) in a
//!   lock-free registry ([`register_waiter!`]);
//! * primitives publish **holder records** (who holds which mutex or write
//!   lock — [`acquired!`] / [`released!`]) and **gauges** (permit counts,
//!   pool sizes — [`gauge!`]);
//! * a `Scanner` (or its background-thread wrapper, [`Watchdog`]) flags
//!   waiters stalled past a threshold, runs cycle detection over the
//!   wait-for graph to report deadlocks with the full cycle, and — under
//!   the opt-in `WatchPolicy::Evict` — recovers by cancelling stuck
//!   waiters through the ordinary CQS cancellation path, so the victims
//!   observe a regular `Cancelled` error rather than a wedged process.
//!
//! Without the feature the registration macros expand to **nothing** (the
//! same literal-no-op pattern as `cqs_chaos::inject!` and
//! `cqs_stats::bump!`): zero code, zero branches, arguments never
//! evaluated.
//!
//! Reports serialize to single-line JSON (`"schema": "cqs-watch/v1"`)
//! through the hand-rolled `cqs_harness::report::JsonWriter`, so a wedged
//! run can be diagnosed by machines; see `WatchReport::to_json`.

/// Type-erased view of a suspended waiter, implemented by
/// `cqs_future::Request<T>`. The registry stores these so the watchdog can
/// observe liveness and — under `WatchPolicy::Evict` — abort a stuck
/// waiter through the normal CQS cancellation path.
pub trait WaiterHandle: Send + Sync {
    /// Whether the request reached a terminal state (completed, cancelled,
    /// or consumed). Terminated records are pruned lazily.
    fn is_terminated(&self) -> bool;

    /// Atomically aborts the request if it is still pending, running its
    /// CQS cancellation handler. Returns `true` if this call cancelled it.
    fn cancel(&self) -> bool;
}

/// Registers a waiter record for the suspension `$handle` on primitive
/// `$primitive` (a [`next_primitive_id`] id) labelled `$label`.
///
/// Expands to nothing unless the `watch` feature is enabled.
#[cfg(feature = "watch")]
#[macro_export]
macro_rules! register_waiter {
    ($primitive:expr, $label:expr, $handle:expr) => {
        $crate::runtime_register_waiter($primitive, $label, {
            // Unsize `Arc<ConcreteWaiter>` to the trait object here so call
            // sites can pass `Arc::clone(&request)` directly. Two bindings:
            // the first fixes the concrete type (keeping it out of the
            // caller's inference), the second is the coercion site.
            let handle = $handle;
            let handle: ::std::sync::Arc<dyn $crate::WaiterHandle> = handle;
            handle
        })
    };
}

/// Registers a waiter record for a suspension.
///
/// The `watch` feature is disabled, so this expands to nothing: the
/// arguments are never evaluated and no code is emitted at the call site.
#[cfg(not(feature = "watch"))]
#[macro_export]
macro_rules! register_waiter {
    ($primitive:expr, $label:expr, $handle:expr) => {};
}

/// Publishes the calling thread as a holder of primitive `$primitive`
/// (`$exclusive` = `true` for mutexes and write locks, which makes the
/// record an edge of the wait-for graph used by deadlock detection).
///
/// Expands to nothing unless the `watch` feature is enabled.
#[cfg(feature = "watch")]
#[macro_export]
macro_rules! acquired {
    ($primitive:expr, $label:expr, $exclusive:expr) => {
        $crate::runtime_acquired($primitive, $label, $exclusive)
    };
}

/// Publishes the calling thread as a holder of a primitive.
///
/// The `watch` feature is disabled, so this expands to nothing.
#[cfg(not(feature = "watch"))]
#[macro_export]
macro_rules! acquired {
    ($primitive:expr, $label:expr, $exclusive:expr) => {};
}

/// Withdraws a holder record previously published with [`acquired!`].
///
/// Expands to nothing unless the `watch` feature is enabled.
#[cfg(feature = "watch")]
#[macro_export]
macro_rules! released {
    ($primitive:expr) => {
        $crate::runtime_released($primitive)
    };
}

/// Withdraws a holder record.
///
/// The `watch` feature is disabled, so this expands to nothing.
#[cfg(not(feature = "watch"))]
#[macro_export]
macro_rules! released {
    ($primitive:expr) => {};
}

/// Publishes the latest value of a named per-primitive gauge (permit
/// counts, pool sizes, live coroutine counts); gauges are embedded in every
/// stall/deadlock report.
///
/// Expands to nothing unless the `watch` feature is enabled.
#[cfg(feature = "watch")]
#[macro_export]
macro_rules! gauge {
    ($primitive:expr, $name:expr, $value:expr) => {
        $crate::runtime_gauge($primitive, $name, $value)
    };
}

/// Publishes the latest value of a named per-primitive gauge.
///
/// The `watch` feature is disabled, so this expands to nothing.
#[cfg(not(feature = "watch"))]
#[macro_export]
macro_rules! gauge {
    ($primitive:expr, $name:expr, $value:expr) => {};
}

#[cfg(feature = "watch")]
mod runtime {
    use super::WaiterHandle;
    use cqs_harness::report::JsonWriter;
    use cqs_reclaim::{pin, AtomicArc};
    use std::collections::{HashMap, HashSet};
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex, OnceLock};
    use std::thread::ThreadId;
    use std::time::{Duration, Instant};

    /// Whether the watch runtime is compiled in.
    pub const fn enabled() -> bool {
        true
    }

    // -----------------------------------------------------------------------
    // Waiter registry (lock-free slab)
    // -----------------------------------------------------------------------

    /// Slab capacity. Registration scans for a free or terminated slot from
    /// a rotating cursor; a full slab drops the record (counted, never
    /// blocking the hot path).
    const SLOTS: usize = 1024;

    struct WaiterRecord {
        generation: u64,
        primitive: u64,
        label: &'static str,
        thread: ThreadId,
        thread_name: String,
        since: Instant,
        handle: Arc<dyn WaiterHandle>,
    }

    struct Registry {
        slots: Vec<AtomicArc<WaiterRecord>>,
        cursor: AtomicUsize,
        dropped: AtomicU64,
    }

    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    static NEXT_GENERATION: AtomicU64 = AtomicU64::new(0);
    static NEXT_PRIMITIVE: AtomicU64 = AtomicU64::new(0);

    fn registry() -> &'static Registry {
        REGISTRY.get_or_init(|| Registry {
            slots: (0..SLOTS).map(|_| AtomicArc::null()).collect(),
            cursor: AtomicUsize::new(0),
            dropped: AtomicU64::new(0),
        })
    }

    fn directory() -> &'static Mutex<HashMap<u64, &'static str>> {
        static DIRECTORY: OnceLock<Mutex<HashMap<u64, &'static str>>> = OnceLock::new();
        DIRECTORY.get_or_init(|| Mutex::new(HashMap::new()))
    }

    /// Allocates a process-unique id for a primitive instance and records
    /// its label; ids start at 1 (0 means "watch disabled"). Called once
    /// per primitive construction — a cold path.
    pub fn next_primitive_id(label: &'static str) -> u64 {
        let id = NEXT_PRIMITIVE.fetch_add(1, Ordering::Relaxed) + 1;
        directory().lock().unwrap().insert(id, label);
        id
    }

    fn thread_label(t: &std::thread::Thread) -> String {
        match t.name() {
            Some(n) => format!("{n} ({:?})", t.id()),
            None => format!("{:?}", t.id()),
        }
    }

    /// Registers a waiter record; the macro-facing entry point behind
    /// [`crate::register_waiter!`].
    ///
    /// Lock-free: claims an empty or terminated slot with a CAS. There is
    /// no explicit deregistration — records whose handle terminated are
    /// reclaimed by later registrations and skipped by scans.
    pub fn runtime_register_waiter(
        primitive: u64,
        label: &'static str,
        handle: Arc<dyn WaiterHandle>,
    ) {
        let reg = registry();
        let generation = NEXT_GENERATION.fetch_add(1, Ordering::SeqCst) + 1;
        let current = std::thread::current();
        let record = Arc::new(WaiterRecord {
            generation,
            primitive,
            label,
            thread: current.id(),
            thread_name: thread_label(&current),
            since: Instant::now(),
            handle,
        });
        let guard = pin();
        let start = reg.cursor.fetch_add(1, Ordering::Relaxed);
        for i in 0..SLOTS {
            let slot = &reg.slots[(start + i) % SLOTS];
            match slot.load(&guard) {
                None => {
                    if slot
                        .compare_exchange_null(Arc::clone(&record), &guard)
                        .is_ok()
                    {
                        return;
                    }
                }
                Some(old) if old.handle.is_terminated() => {
                    if slot
                        .compare_exchange(Arc::as_ptr(&old), Some(Arc::clone(&record)), &guard)
                        .is_ok()
                    {
                        return;
                    }
                }
                Some(_) => {}
            }
        }
        reg.dropped.fetch_add(1, Ordering::Relaxed);
    }

    /// Registrations dropped because the slab was full of live waiters
    /// (diagnostic; reports are incomplete past this point, never wrong).
    pub fn dropped_registrations() -> u64 {
        registry().dropped.load(Ordering::Relaxed)
    }

    /// A live (not yet terminated) waiter, as observed by a scan.
    #[derive(Debug, Clone)]
    pub struct WaiterInfo {
        /// Process-wide registration order; unique per suspension.
        pub generation: u64,
        /// Primitive instance id from [`next_primitive_id`].
        pub primitive: u64,
        /// Static label of the suspension site (e.g. `"mutex.lock"`).
        pub label: &'static str,
        /// The suspending thread.
        pub thread: ThreadId,
        /// Human-readable thread name (falls back to the debug id).
        pub thread_name: String,
        /// How long the waiter had been enqueued when the scan ran.
        pub waited: Duration,
    }

    fn collect_live(min_generation: u64, now: Instant) -> Vec<(WaiterInfo, Arc<dyn WaiterHandle>)> {
        let reg = registry();
        let guard = pin();
        let mut out = Vec::new();
        for slot in &reg.slots {
            if let Some(record) = slot.load(&guard) {
                if record.generation > min_generation && !record.handle.is_terminated() {
                    out.push((
                        WaiterInfo {
                            generation: record.generation,
                            primitive: record.primitive,
                            label: record.label,
                            thread: record.thread,
                            thread_name: record.thread_name.clone(),
                            waited: now.saturating_duration_since(record.since),
                        },
                        Arc::clone(&record.handle),
                    ));
                }
            }
        }
        out.sort_by_key(|(w, _)| w.generation);
        out
    }

    /// Snapshot of every live waiter registered after `min_generation`
    /// (pass 0 for all).
    pub fn live_waiters(min_generation: u64) -> Vec<WaiterInfo> {
        collect_live(min_generation, Instant::now())
            .into_iter()
            .map(|(w, _)| w)
            .collect()
    }

    // -----------------------------------------------------------------------
    // Holders and gauges
    // -----------------------------------------------------------------------

    struct HolderEntry {
        label: &'static str,
        thread_name: String,
        exclusive: bool,
        count: u64,
        since: Instant,
    }

    fn holders() -> &'static Mutex<HashMap<(u64, ThreadId), HolderEntry>> {
        static HOLDERS: OnceLock<Mutex<HashMap<(u64, ThreadId), HolderEntry>>> = OnceLock::new();
        HOLDERS.get_or_init(|| Mutex::new(HashMap::new()))
    }

    fn gauges() -> &'static Mutex<HashMap<(u64, &'static str), i64>> {
        static GAUGES: OnceLock<Mutex<HashMap<(u64, &'static str), i64>>> = OnceLock::new();
        GAUGES.get_or_init(|| Mutex::new(HashMap::new()))
    }

    /// Publishes the calling thread as a holder; the entry point behind
    /// [`crate::acquired!`].
    pub fn runtime_acquired(primitive: u64, label: &'static str, exclusive: bool) {
        let current = std::thread::current();
        let mut map = holders().lock().unwrap();
        let entry = map
            .entry((primitive, current.id()))
            .or_insert_with(|| HolderEntry {
                label,
                thread_name: thread_label(&current),
                exclusive,
                count: 0,
                since: Instant::now(),
            });
        entry.count += 1;
    }

    /// Withdraws a holder record; the entry point behind
    /// [`crate::released!`]. Prefers the calling thread's record; if a
    /// guard migrated threads, any one record of the primitive is
    /// decremented instead, keeping the aggregate count honest.
    pub fn runtime_released(primitive: u64) {
        let id = std::thread::current().id();
        let mut map = holders().lock().unwrap();
        let key = if map.contains_key(&(primitive, id)) {
            (primitive, id)
        } else {
            match map.keys().find(|(p, _)| *p == primitive).copied() {
                Some(k) => k,
                None => return, // released without a visible acquire; ignore
            }
        };
        let entry = map.get_mut(&key).expect("key was just found");
        entry.count -= 1;
        if entry.count == 0 {
            map.remove(&key);
        }
    }

    /// Publishes a gauge value; the entry point behind [`crate::gauge!`].
    pub fn runtime_gauge(primitive: u64, name: &'static str, value: i64) {
        gauges().lock().unwrap().insert((primitive, name), value);
    }

    /// A holder record, as observed by a scan.
    #[derive(Debug, Clone)]
    pub struct HolderInfo {
        /// Primitive instance id.
        pub primitive: u64,
        /// Static label of the acquisition site.
        pub label: &'static str,
        /// The holding thread.
        pub thread: ThreadId,
        /// Human-readable thread name.
        pub thread_name: String,
        /// Whether the hold is exclusive (an edge for deadlock detection).
        pub exclusive: bool,
        /// Reentrant hold count.
        pub count: u64,
        /// How long the oldest hold of this entry has been live.
        pub held: Duration,
    }

    fn holders_snapshot(now: Instant) -> Vec<HolderInfo> {
        let map = holders().lock().unwrap();
        let mut out: Vec<HolderInfo> = map
            .iter()
            .map(|((primitive, thread), e)| HolderInfo {
                primitive: *primitive,
                label: e.label,
                thread: *thread,
                thread_name: e.thread_name.clone(),
                exclusive: e.exclusive,
                count: e.count,
                held: now.saturating_duration_since(e.since),
            })
            .collect();
        out.sort_by(|a, b| (a.primitive, &a.thread_name).cmp(&(b.primitive, &b.thread_name)));
        out
    }

    /// A gauge value, as observed by a scan.
    #[derive(Debug, Clone)]
    pub struct GaugeInfo {
        /// Primitive instance id.
        pub primitive: u64,
        /// The primitive's label from [`next_primitive_id`], if known.
        pub primitive_label: Option<&'static str>,
        /// Gauge name (e.g. `"available_permits"`).
        pub name: &'static str,
        /// Latest published value.
        pub value: i64,
    }

    /// The retired-but-unreclaimed backlog of one memory-reclamation
    /// backend, as observed by a scan (`cqs_reclaim::retired_approx`).
    #[derive(Debug, Clone)]
    pub struct ReclaimGauge {
        /// Backend name (`"epoch"`, `"hazard"`, `"owned"`).
        pub backend: &'static str,
        /// Objects retired through this backend and still awaiting
        /// physical reclamation.
        pub retired: u64,
    }

    fn reclaim_snapshot() -> Vec<ReclaimGauge> {
        cqs_reclaim::ReclaimerKind::ALL
            .iter()
            .map(|kind| ReclaimGauge {
                backend: kind.name(),
                retired: cqs_reclaim::retired_approx(*kind) as u64,
            })
            .collect()
    }

    fn gauges_snapshot() -> Vec<GaugeInfo> {
        let dir = directory().lock().unwrap();
        let map = gauges().lock().unwrap();
        let mut out: Vec<GaugeInfo> = map
            .iter()
            .map(|((primitive, name), value)| GaugeInfo {
                primitive: *primitive,
                primitive_label: dir.get(primitive).copied(),
                name,
                value: *value,
            })
            .collect();
        out.sort_by_key(|g| (g.primitive, g.name));
        out
    }

    // -----------------------------------------------------------------------
    // Wait-for graph
    // -----------------------------------------------------------------------

    /// One edge of a detected deadlock cycle: `thread` waits for
    /// `primitive`, which is exclusively held by `holder`.
    #[derive(Debug, Clone)]
    pub struct CycleEdge {
        /// The waiting thread.
        pub thread: ThreadId,
        /// Human-readable name of the waiting thread.
        pub thread_name: String,
        /// Generation of the waiter record forming this edge.
        pub waiter_generation: u64,
        /// The wanted primitive.
        pub primitive: u64,
        /// Label of the wanted primitive's suspension site.
        pub label: &'static str,
        /// The thread exclusively holding the wanted primitive.
        pub holder: ThreadId,
        /// Human-readable name of the holding thread.
        pub holder_name: String,
    }

    /// Runs cycle detection over the bipartite wait-for graph: threads
    /// *want* primitives (waiter records) and exclusively *hold* primitives
    /// (holder records with `exclusive = true`; shared holds such as
    /// semaphore permits or read locks never form edges, which keeps
    /// semaphore contention from producing false deadlocks). Returns each
    /// distinct cycle as its list of edges.
    pub fn detect_cycles(waiters: &[WaiterInfo], holders: &[HolderInfo]) -> Vec<Vec<CycleEdge>> {
        let mut wants: HashMap<ThreadId, Vec<&WaiterInfo>> = HashMap::new();
        for w in waiters {
            wants.entry(w.thread).or_default().push(w);
        }
        let mut held: HashMap<u64, Vec<&HolderInfo>> = HashMap::new();
        for h in holders.iter().filter(|h| h.exclusive) {
            held.entry(h.primitive).or_default().push(h);
        }

        let mut cycles = Vec::new();
        let mut seen: HashSet<Vec<u64>> = HashSet::new();
        let mut color: HashMap<ThreadId, u8> = HashMap::new();
        let mut threads: Vec<ThreadId> = wants.keys().copied().collect();
        threads.sort_by_key(|t| format!("{t:?}"));
        for t in threads {
            if !color.contains_key(&t) {
                dfs(
                    t,
                    &wants,
                    &held,
                    &mut color,
                    &mut Vec::new(),
                    &mut cycles,
                    &mut seen,
                );
            }
        }
        cycles
    }

    #[allow(clippy::too_many_arguments)]
    fn dfs(
        t: ThreadId,
        wants: &HashMap<ThreadId, Vec<&WaiterInfo>>,
        held: &HashMap<u64, Vec<&HolderInfo>>,
        color: &mut HashMap<ThreadId, u8>,
        path: &mut Vec<CycleEdge>,
        cycles: &mut Vec<Vec<CycleEdge>>,
        seen: &mut HashSet<Vec<u64>>,
    ) {
        color.insert(t, 1);
        if let Some(ws) = wants.get(&t) {
            for w in ws {
                let Some(hs) = held.get(&w.primitive) else {
                    continue;
                };
                for h in hs {
                    let edge = CycleEdge {
                        thread: t,
                        thread_name: w.thread_name.clone(),
                        waiter_generation: w.generation,
                        primitive: w.primitive,
                        label: w.label,
                        holder: h.thread,
                        holder_name: h.thread_name.clone(),
                    };
                    match color.get(&h.thread).copied().unwrap_or(0) {
                        1 => {
                            // Back edge: the cycle is the path suffix
                            // starting at the holder's first edge.
                            path.push(edge);
                            let start = path
                                .iter()
                                .position(|e| e.thread == h.thread)
                                .unwrap_or(path.len() - 1);
                            let cycle: Vec<CycleEdge> = path[start..].to_vec();
                            let mut key: Vec<u64> =
                                cycle.iter().map(|e| e.waiter_generation).collect();
                            key.sort_unstable();
                            if seen.insert(key) {
                                cycles.push(cycle);
                            }
                            path.pop();
                        }
                        0 => {
                            path.push(edge);
                            dfs(h.thread, wants, held, color, path, cycles, seen);
                            path.pop();
                        }
                        _ => {}
                    }
                }
            }
        }
        color.insert(t, 2);
    }

    // -----------------------------------------------------------------------
    // Policy, scanner, watchdog
    // -----------------------------------------------------------------------

    /// What the scanner does about stuck waiters.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum WatchPolicy {
        /// Report only; never interferes with the workload.
        Observe,
        /// Recover by cancelling stuck waiters through CQS cancellation:
        /// one waiter of every confirmed deadlock cycle is evicted
        /// immediately (cycles never resolve on their own), and any waiter
        /// stalled past `deadline` is evicted on sight.
        Evict {
            /// Stall age past which a waiter is forcibly cancelled.
            deadline: Duration,
        },
    }

    /// Scanner/watchdog tuning knobs.
    #[derive(Debug, Clone, Copy)]
    pub struct WatchConfig {
        /// Wait age past which a waiter is reported as stalled.
        pub stall_threshold: Duration,
        /// [`Watchdog`] scan period.
        pub scan_interval: Duration,
        /// Consecutive scans a cycle must survive before it is reported
        /// (and, under [`WatchPolicy::Evict`], acted on). Snapshots of the
        /// wait-for graph are racy; a real deadlock is permanent, so
        /// requiring two sightings filters out in-flight hand-offs.
        pub confirm_cycle_scans: u32,
        /// What to do about stuck waiters.
        pub policy: WatchPolicy,
    }

    impl WatchConfig {
        /// Defaults: 1 s stall threshold, 100 ms scan interval, cycles
        /// confirmed after 2 sightings, observe-only policy.
        pub fn new() -> Self {
            WatchConfig {
                stall_threshold: Duration::from_secs(1),
                scan_interval: Duration::from_millis(100),
                confirm_cycle_scans: 2,
                policy: WatchPolicy::Observe,
            }
        }

        /// Sets the stall threshold.
        #[must_use]
        pub fn stall_threshold(mut self, threshold: Duration) -> Self {
            self.stall_threshold = threshold;
            self
        }

        /// Sets the watchdog scan interval.
        #[must_use]
        pub fn scan_interval(mut self, interval: Duration) -> Self {
            self.scan_interval = interval;
            self
        }

        /// Sets the cycle confirmation requirement (minimum 1).
        #[must_use]
        pub fn confirm_cycle_scans(mut self, scans: u32) -> Self {
            self.confirm_cycle_scans = scans.max(1);
            self
        }

        /// Sets the eviction policy.
        #[must_use]
        pub fn policy(mut self, policy: WatchPolicy) -> Self {
            self.policy = policy;
            self
        }
    }

    impl Default for WatchConfig {
        fn default() -> Self {
            Self::new()
        }
    }

    /// What a [`WatchReport`] is about.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum ReportKind {
        /// Waiters stalled past the threshold (and/or deadline evictions).
        Stall,
        /// A confirmed wait-for-graph cycle.
        Deadlock,
    }

    /// Queue depth of one primitive: its count of live waiter records.
    #[derive(Debug, Clone)]
    pub struct QueueDepth {
        /// Primitive instance id.
        pub primitive: u64,
        /// Label of the primitive's suspension site.
        pub label: &'static str,
        /// Live waiter records observed.
        pub depth: u64,
    }

    /// A structured stall or deadlock report. Produced by [`Scanner::scan`]
    /// and serialized by [`to_json`](WatchReport::to_json) for machines.
    #[derive(Debug, Clone)]
    pub struct WatchReport {
        /// Stall or deadlock.
        pub kind: ReportKind,
        /// Waiters newly past the stall threshold ([`ReportKind::Stall`]).
        pub stalled: Vec<WaiterInfo>,
        /// The deadlock cycle's edges ([`ReportKind::Deadlock`]).
        pub cycle: Vec<CycleEdge>,
        /// Generations of waiters this scan evicted (cancelled).
        pub evicted: Vec<u64>,
        /// Every live waiter at scan time.
        pub waiters: Vec<WaiterInfo>,
        /// Every holder record at scan time.
        pub holders: Vec<HolderInfo>,
        /// Live waiter count per primitive.
        pub queues: Vec<QueueDepth>,
        /// Latest published gauges (permit accounting, pool sizes, ...).
        pub gauges: Vec<GaugeInfo>,
        /// Number of primitives whose `poisoned` gauge is nonzero at scan
        /// time — queues a panic escaped from (or that were explicitly
        /// poisoned), now closed and failing operations fast.
        pub poisoned_primitives: u64,
        /// Process resident set size in bytes at scan time; `None` where
        /// the probe is unavailable (see `cqs_harness::rss_bytes`) — the
        /// JSON then omits the key rather than reporting a misleading
        /// zero. A stalled-waiter pile-up that also inflates this is a
        /// leak, not just a liveness problem.
        pub rss_bytes: Option<u64>,
        /// Per-backend count of objects retired through each
        /// memory-reclamation backend but not yet physically reclaimed
        /// (see `cqs_reclaim::retired_approx`). A growing epoch figure
        /// alongside stalled waiters usually means a guard is pinned
        /// somewhere in the stall.
        pub reclaim: Vec<ReclaimGauge>,
        /// Sum of every `live_segments` gauge at scan time — the queue
        /// segments currently allocated across primitives that publish
        /// the gauge (sharded structures do per shard).
        pub live_segments: u64,
        /// Operation-counter snapshot (all zeros unless the `stats`
        /// feature is also enabled).
        pub counters: cqs_stats::CqsStats,
    }

    fn duration_ms(d: Duration) -> f64 {
        d.as_secs_f64() * 1e3
    }

    fn write_waiter(w: &JsonWriterWaiter<'_>, out: &mut JsonWriter) {
        out.begin_object();
        out.field_u64("generation", w.0.generation);
        out.field_u64("primitive", w.0.primitive);
        out.field_str("label", w.0.label);
        out.field_str("thread", &w.0.thread_name);
        out.field_f64("waited_ms", duration_ms(w.0.waited));
        out.end_object();
    }

    struct JsonWriterWaiter<'a>(&'a WaiterInfo);

    impl WatchReport {
        /// Serializes the report to single-line JSON
        /// (`"schema": "cqs-watch/v1"`), reusing the bench pipeline's
        /// hand-rolled writer.
        pub fn to_json(&self) -> String {
            let mut out = JsonWriter::new();
            out.begin_object();
            out.field_str("schema", "cqs-watch/v1");
            out.field_str(
                "kind",
                match self.kind {
                    ReportKind::Stall => "stall",
                    ReportKind::Deadlock => "deadlock",
                },
            );
            out.key("stalled");
            out.begin_array();
            for w in &self.stalled {
                write_waiter(&JsonWriterWaiter(w), &mut out);
            }
            out.end_array();
            out.key("cycle");
            out.begin_array();
            for e in &self.cycle {
                out.begin_object();
                out.field_str("thread", &e.thread_name);
                out.field_u64("waiter_generation", e.waiter_generation);
                out.field_u64("wants", e.primitive);
                out.field_str("wants_label", e.label);
                out.field_str("held_by", &e.holder_name);
                out.end_object();
            }
            out.end_array();
            out.key("evicted");
            out.begin_array();
            for g in &self.evicted {
                out.unsigned(*g);
            }
            out.end_array();
            out.key("waiters");
            out.begin_array();
            for w in &self.waiters {
                write_waiter(&JsonWriterWaiter(w), &mut out);
            }
            out.end_array();
            out.key("holders");
            out.begin_array();
            for h in &self.holders {
                out.begin_object();
                out.field_u64("primitive", h.primitive);
                out.field_str("label", h.label);
                out.field_str("thread", &h.thread_name);
                out.field_bool("exclusive", h.exclusive);
                out.field_u64("count", h.count);
                out.field_f64("held_ms", duration_ms(h.held));
                out.end_object();
            }
            out.end_array();
            out.key("queues");
            out.begin_array();
            for q in &self.queues {
                out.begin_object();
                out.field_u64("primitive", q.primitive);
                out.field_str("label", q.label);
                out.field_u64("depth", q.depth);
                out.end_object();
            }
            out.end_array();
            out.key("gauges");
            out.begin_array();
            for g in &self.gauges {
                out.begin_object();
                out.field_u64("primitive", g.primitive);
                if let Some(label) = g.primitive_label {
                    out.field_str("primitive_label", label);
                }
                out.field_str("name", g.name);
                out.field_i64("value", g.value);
                out.end_object();
            }
            out.end_array();
            out.field_u64("poisoned_primitives", self.poisoned_primitives);
            if let Some(rss) = self.rss_bytes {
                out.field_u64("rss_bytes", rss);
            }
            out.field_u64("live_segments", self.live_segments);
            out.key("reclaim");
            out.begin_object();
            for g in &self.reclaim {
                out.field_u64(g.backend, g.retired);
            }
            out.end_object();
            out.key("counters");
            out.begin_object();
            for (name, value) in self.counters.fields() {
                out.field_u64(name, value);
            }
            out.end_object();
            out.end_object();
            out.finish()
        }
    }

    /// Threadless scan engine: call [`scan`](Scanner::scan) whenever you
    /// like (tests drive it deterministically); [`Watchdog`] wraps it in a
    /// background thread.
    ///
    /// A fresh scanner only observes waiters registered *after* its
    /// creation, so concurrently running tests (or earlier phases of a
    /// process) do not leak into each other's reports; use
    /// [`including_preexisting`](Scanner::including_preexisting) to widen
    /// the view to the whole registry.
    #[derive(Debug)]
    pub struct Scanner {
        config: WatchConfig,
        min_generation: u64,
        reported_stalls: HashSet<u64>,
        reported_cycles: HashSet<Vec<u64>>,
        pending_cycles: HashMap<Vec<u64>, u32>,
    }

    impl Scanner {
        /// Creates a scanner observing waiters registered from now on.
        pub fn new(config: WatchConfig) -> Self {
            Scanner {
                config,
                min_generation: NEXT_GENERATION.load(Ordering::SeqCst),
                reported_stalls: HashSet::new(),
                reported_cycles: HashSet::new(),
                pending_cycles: HashMap::new(),
            }
        }

        /// Widens the scanner to every waiter in the registry, including
        /// those registered before it was created.
        #[must_use]
        pub fn including_preexisting(mut self) -> Self {
            self.min_generation = 0;
            self
        }

        /// Takes a racy snapshot of waiters/holders/gauges, detects
        /// confirmed deadlock cycles and newly stalled waiters, applies the
        /// eviction policy, and returns the resulting reports (empty when
        /// everything is healthy).
        pub fn scan(&mut self) -> Vec<WatchReport> {
            let now = Instant::now();
            let live = collect_live(self.min_generation, now);
            let waiters: Vec<WaiterInfo> = live.iter().map(|(w, _)| w.clone()).collect();
            let handles: HashMap<u64, &Arc<dyn WaiterHandle>> =
                live.iter().map(|(w, h)| (w.generation, h)).collect();
            let holders = holders_snapshot(now);
            let gauges = gauges_snapshot();
            let mut queue_map: HashMap<(u64, &'static str), u64> = HashMap::new();
            for w in &waiters {
                *queue_map.entry((w.primitive, w.label)).or_insert(0) += 1;
            }
            let mut queues: Vec<QueueDepth> = queue_map
                .into_iter()
                .map(|((primitive, label), depth)| QueueDepth {
                    primitive,
                    label,
                    depth,
                })
                .collect();
            queues.sort_by_key(|q| q.primitive);
            let counters = cqs_stats::CqsStats::snapshot();
            // Poison is published as a `poisoned` gauge by the owning
            // primitive (see cqs-core); surface the count so report
            // consumers can distinguish "stuck" from "already failed fast".
            let poisoned_primitives = gauges
                .iter()
                .filter(|g| g.name == "poisoned" && g.value != 0)
                .count() as u64;
            let rss_bytes = cqs_harness::rss_bytes();
            let reclaim = reclaim_snapshot();
            let live_segments = gauges
                .iter()
                .filter(|g| g.name == "live_segments")
                .map(|g| g.value.max(0) as u64)
                .sum();
            let mut reports = Vec::new();

            // Deadlocks: confirm a cycle across consecutive scans before
            // reporting (snapshots are racy, real cycles are permanent).
            let cycles = detect_cycles(&waiters, &holders);
            let mut seen_this_scan: HashSet<Vec<u64>> = HashSet::new();
            for cycle in cycles {
                let mut key: Vec<u64> = cycle.iter().map(|e| e.waiter_generation).collect();
                key.sort_unstable();
                seen_this_scan.insert(key.clone());
                if self.reported_cycles.contains(&key) {
                    continue;
                }
                let sightings = self.pending_cycles.entry(key.clone()).or_insert(0);
                *sightings += 1;
                if *sightings < self.config.confirm_cycle_scans {
                    continue;
                }
                self.pending_cycles.remove(&key);
                self.reported_cycles.insert(key);
                let mut evicted = Vec::new();
                if matches!(self.config.policy, WatchPolicy::Evict { .. }) {
                    // Evict exactly one waiter: the youngest in the cycle
                    // (falling back along the cycle if it terminated in the
                    // meantime), so the longest-waiting party proceeds.
                    let mut victims: Vec<u64> = cycle.iter().map(|e| e.waiter_generation).collect();
                    victims.sort_unstable_by(|a, b| b.cmp(a));
                    for generation in victims {
                        if let Some(handle) = handles.get(&generation) {
                            if handle.cancel() {
                                evicted.push(generation);
                                break;
                            }
                        }
                    }
                }
                reports.push(WatchReport {
                    kind: ReportKind::Deadlock,
                    stalled: Vec::new(),
                    cycle,
                    evicted,
                    waiters: waiters.clone(),
                    holders: holders.clone(),
                    queues: queues.clone(),
                    gauges: gauges.clone(),
                    poisoned_primitives,
                    rss_bytes,
                    reclaim: reclaim.clone(),
                    live_segments,
                    counters,
                });
            }
            // A cycle that vanished from the snapshot was a transient
            // hand-off, not a deadlock: reset its confirmation count.
            self.pending_cycles
                .retain(|key, _| seen_this_scan.contains(key));

            // Stalls: report each stalled waiter once; under Evict, cancel
            // anything past the deadline.
            let newly_stalled: Vec<WaiterInfo> = waiters
                .iter()
                .filter(|w| {
                    w.waited >= self.config.stall_threshold
                        && !self.reported_stalls.contains(&w.generation)
                })
                .cloned()
                .collect();
            let mut evicted = Vec::new();
            if let WatchPolicy::Evict { deadline } = self.config.policy {
                for w in &waiters {
                    if w.waited >= deadline {
                        if let Some(handle) = handles.get(&w.generation) {
                            if handle.cancel() {
                                evicted.push(w.generation);
                            }
                        }
                    }
                }
            }
            if !newly_stalled.is_empty() || !evicted.is_empty() {
                for w in &newly_stalled {
                    self.reported_stalls.insert(w.generation);
                }
                reports.push(WatchReport {
                    kind: ReportKind::Stall,
                    stalled: newly_stalled,
                    cycle: Vec::new(),
                    evicted,
                    waiters,
                    holders,
                    queues,
                    gauges,
                    poisoned_primitives,
                    rss_bytes,
                    reclaim,
                    live_segments,
                    counters,
                });
            }
            reports
        }
    }

    /// Background watchdog thread: runs a [`Scanner`] (over the whole
    /// registry) every [`WatchConfig::scan_interval`] and hands each
    /// report to the sink. Stopped by [`stop`](Watchdog::stop) or by drop.
    pub struct Watchdog {
        stop: Arc<(Mutex<bool>, Condvar)>,
        thread: Option<std::thread::JoinHandle<()>>,
    }

    impl Watchdog {
        /// Spawns the watchdog thread.
        pub fn spawn<F>(config: WatchConfig, sink: F) -> Self
        where
            F: Fn(&WatchReport) + Send + 'static,
        {
            let stop = Arc::new((Mutex::new(false), Condvar::new()));
            let stop2 = Arc::clone(&stop);
            let thread = std::thread::Builder::new()
                .name("cqs-watch".to_string())
                .spawn(move || {
                    let mut scanner = Scanner::new(config).including_preexisting();
                    let (lock, cv) = &*stop2;
                    loop {
                        {
                            let stopped = lock.lock().unwrap();
                            let (stopped, _) =
                                cv.wait_timeout(stopped, config.scan_interval).unwrap();
                            if *stopped {
                                return;
                            }
                        }
                        for report in scanner.scan() {
                            sink(&report);
                        }
                    }
                })
                .expect("failed to spawn the cqs-watch thread");
            Watchdog {
                stop,
                thread: Some(thread),
            }
        }

        /// Stops the watchdog and joins its thread.
        pub fn stop(mut self) {
            self.shutdown();
        }

        fn shutdown(&mut self) {
            if let Some(thread) = self.thread.take() {
                *self.stop.0.lock().unwrap() = true;
                self.stop.1.notify_all();
                let _ = thread.join();
            }
        }
    }

    impl Drop for Watchdog {
        fn drop(&mut self) {
            self.shutdown();
        }
    }

    impl std::fmt::Debug for Watchdog {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("Watchdog")
                .field("running", &self.thread.is_some())
                .finish()
        }
    }

    /// Spawns a watchdog configured from the environment, or returns
    /// `None` when `CQS_WATCH_STALL_MS` is unset. Intended for binaries
    /// (the bench `figures` runner uses it) so a wedged run can be
    /// diagnosed without code changes:
    ///
    /// * `CQS_WATCH_STALL_MS` — stall threshold in milliseconds (enables
    ///   the watchdog);
    /// * `CQS_WATCH_EVICT_MS` — optional eviction deadline in
    ///   milliseconds (switches the policy to [`WatchPolicy::Evict`]);
    /// * `CQS_WATCH_REPORT` — optional path; reports are appended there
    ///   as JSON lines instead of being printed to stderr.
    pub fn spawn_from_env() -> Option<Watchdog> {
        let stall_ms: u64 = std::env::var("CQS_WATCH_STALL_MS")
            .ok()?
            .trim()
            .parse()
            .ok()?;
        let stall = Duration::from_millis(stall_ms.max(1));
        let mut config = WatchConfig::new()
            .stall_threshold(stall)
            .scan_interval(Duration::from_millis((stall_ms / 2).clamp(10, 250)));
        if let Some(evict_ms) = std::env::var("CQS_WATCH_EVICT_MS")
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
        {
            config = config.policy(WatchPolicy::Evict {
                deadline: Duration::from_millis(evict_ms.max(1)),
            });
        }
        let path = std::env::var("CQS_WATCH_REPORT").ok();
        Some(Watchdog::spawn(config, move |report| {
            let json = report.to_json();
            match &path {
                Some(p) => {
                    use std::io::Write as _;
                    let written = std::fs::OpenOptions::new()
                        .create(true)
                        .append(true)
                        .open(p)
                        .and_then(|mut f| writeln!(f, "{json}"));
                    if let Err(e) = written {
                        eprintln!("cqs-watch: cannot append to {p}: {e}; report: {json}");
                    }
                }
                None => eprintln!("{json}"),
            }
        }))
    }
}

#[cfg(feature = "watch")]
pub use runtime::{
    detect_cycles, dropped_registrations, enabled, live_waiters, next_primitive_id,
    runtime_acquired, runtime_gauge, runtime_register_waiter, runtime_released, spawn_from_env,
    CycleEdge, GaugeInfo, HolderInfo, QueueDepth, ReclaimGauge, ReportKind, Scanner, WaiterInfo,
    WatchConfig, WatchPolicy, WatchReport, Watchdog,
};

// Inert stand-ins so callers can manage the watchdog unconditionally; with
// the feature off these compile to nothing and no record is ever kept.
#[cfg(not(feature = "watch"))]
mod inert {
    /// Always `false`: the `watch` feature is disabled.
    pub const fn enabled() -> bool {
        false
    }

    /// Always `0`: the `watch` feature is disabled, no ids are allocated.
    pub fn next_primitive_id(_label: &'static str) -> u64 {
        0
    }

    /// Inert stand-in for the watchdog; cannot be constructed into
    /// anything that runs.
    #[derive(Debug)]
    pub struct Watchdog(());

    /// Always `None`: the `watch` feature is disabled.
    pub fn spawn_from_env() -> Option<Watchdog> {
        None
    }
}

#[cfg(not(feature = "watch"))]
pub use inert::{enabled, next_primitive_id, spawn_from_env, Watchdog};

#[cfg(all(test, feature = "watch"))]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    /// A registry-only stand-in for `Request<T>`.
    struct FakeWaiter {
        terminated: AtomicBool,
        cancelled: AtomicBool,
    }

    impl FakeWaiter {
        fn new() -> Arc<Self> {
            Arc::new(FakeWaiter {
                terminated: AtomicBool::new(false),
                cancelled: AtomicBool::new(false),
            })
        }

        fn complete(&self) {
            self.terminated.store(true, Ordering::SeqCst);
        }
    }

    impl WaiterHandle for FakeWaiter {
        fn is_terminated(&self) -> bool {
            self.terminated.load(Ordering::SeqCst)
        }

        fn cancel(&self) -> bool {
            if self.terminated.swap(true, Ordering::SeqCst) {
                return false;
            }
            self.cancelled.store(true, Ordering::SeqCst);
            true
        }
    }

    fn scanner(config: WatchConfig) -> Scanner {
        Scanner::new(config)
    }

    #[test]
    fn registry_tracks_live_waiters_and_prunes_terminated() {
        let id = next_primitive_id("test.registry");
        let scan_floor = Scanner::new(WatchConfig::new());
        let w1 = FakeWaiter::new();
        let w2 = FakeWaiter::new();
        register_waiter!(id, "test.registry", w1.clone());
        register_waiter!(id, "test.registry", w2.clone());
        let mine = |ws: Vec<WaiterInfo>| {
            ws.into_iter()
                .filter(|w| w.primitive == id)
                .collect::<Vec<_>>()
        };
        drop(scan_floor);
        assert_eq!(mine(live_waiters(0)).len(), 2);
        w1.complete();
        let live = mine(live_waiters(0));
        assert_eq!(live.len(), 1);
        assert_eq!(live[0].label, "test.registry");
        w2.complete();
        assert!(mine(live_waiters(0)).is_empty());
    }

    #[test]
    fn scanner_reports_stall_once_and_deadline_evicts() {
        let id = next_primitive_id("test.stall");
        let mut s = scanner(
            WatchConfig::new()
                .stall_threshold(Duration::from_millis(0))
                .policy(WatchPolicy::Observe),
        );
        let w = FakeWaiter::new();
        register_waiter!(id, "test.stall", w.clone());
        let reports = s.scan();
        let stall = reports
            .iter()
            .find(|r| r.kind == ReportKind::Stall)
            .expect("zero-threshold scan must report the stall");
        assert!(stall.stalled.iter().any(|x| x.primitive == id));
        assert!(stall
            .queues
            .iter()
            .any(|q| q.primitive == id && q.depth == 1));
        // The same waiter is not re-reported.
        assert!(s
            .scan()
            .iter()
            .all(|r| r.stalled.iter().all(|x| x.primitive != id)));

        // Deadline eviction cancels through the handle.
        let mut evicting = scanner(
            WatchConfig::new()
                .stall_threshold(Duration::from_millis(0))
                .policy(WatchPolicy::Evict {
                    deadline: Duration::from_millis(0),
                }),
        );
        let victim = FakeWaiter::new();
        register_waiter!(id, "test.stall", victim.clone());
        let reports = evicting.scan();
        assert!(victim.cancelled.load(Ordering::SeqCst));
        assert!(reports.iter().any(|r| !r.evicted.is_empty()));
        w.complete();
    }

    #[test]
    fn cycle_detection_finds_abba_and_ignores_shared_holds() {
        // Two threads, two primitives: T1 holds A wants B, T2 holds B
        // wants A. Thread ids must be real, so borrow them from spawned
        // threads.
        let (t1, t2) = {
            let a = std::thread::spawn(|| std::thread::current().id())
                .join()
                .unwrap();
            let b = std::thread::spawn(|| std::thread::current().id())
                .join()
                .unwrap();
            (a, b)
        };
        let waiter = |generation, primitive, thread| WaiterInfo {
            generation,
            primitive,
            label: "test.cycle",
            thread,
            thread_name: format!("{thread:?}"),
            waited: Duration::from_millis(5),
        };
        let holder = |primitive, thread, exclusive| HolderInfo {
            primitive,
            label: "test.cycle",
            thread,
            thread_name: format!("{thread:?}"),
            exclusive,
            count: 1,
            held: Duration::from_millis(5),
        };
        let waiters = [waiter(1, 102, t1), waiter(2, 101, t2)];
        let holders = [holder(101, t1, true), holder(102, t2, true)];
        let cycles = detect_cycles(&waiters, &holders);
        assert_eq!(cycles.len(), 1, "exactly one ABBA cycle");
        assert_eq!(cycles[0].len(), 2, "the cycle has both edges");
        let prims: Vec<u64> = cycles[0].iter().map(|e| e.primitive).collect();
        assert!(prims.contains(&101) && prims.contains(&102));

        // Shared (non-exclusive) holds never form edges: no false
        // deadlock from semaphore-style contention.
        let shared = [holder(101, t1, false), holder(102, t2, false)];
        assert!(detect_cycles(&waiters, &shared).is_empty());
    }

    #[test]
    fn cycle_requires_confirmation_scans() {
        let a = next_primitive_id("test.confirm.a");
        let b = next_primitive_id("test.confirm.b");
        let mut s = scanner(
            WatchConfig::new()
                .stall_threshold(Duration::from_secs(3600))
                .confirm_cycle_scans(2),
        );
        let (w1, w2) = (FakeWaiter::new(), FakeWaiter::new());
        let j1 = {
            let (w1, w2) = (w1.clone(), w2.clone());
            std::thread::spawn(move || {
                acquired!(a, "test.confirm.a", true);
                register_waiter!(b, "test.confirm.b", w1.clone());
                while !w1.is_terminated() && !w2.is_terminated() {
                    std::thread::sleep(Duration::from_millis(1));
                }
                released!(a);
            })
        };
        let j2 = {
            let (w1, w2) = (w1.clone(), w2.clone());
            std::thread::spawn(move || {
                acquired!(b, "test.confirm.b", true);
                register_waiter!(a, "test.confirm.a", w2.clone());
                while !w1.is_terminated() && !w2.is_terminated() {
                    std::thread::sleep(Duration::from_millis(1));
                }
                released!(b);
            })
        };
        // Wait for both edges to be published.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        loop {
            let live = live_waiters(0)
                .into_iter()
                .filter(|w| w.primitive == a || w.primitive == b)
                .count();
            if live == 2 {
                break;
            }
            assert!(std::time::Instant::now() < deadline, "edges never appeared");
            std::thread::yield_now();
        }
        let first = s.scan();
        assert!(
            first.iter().all(|r| r.kind != ReportKind::Deadlock),
            "cycle must not be reported on first sighting"
        );
        let second = s.scan();
        let deadlock = second
            .iter()
            .find(|r| r.kind == ReportKind::Deadlock)
            .expect("second sighting confirms the cycle");
        assert_eq!(deadlock.cycle.len(), 2);
        // Parse the JSON and check both edges are named.
        let doc = cqs_harness::report::Json::parse(&deadlock.to_json()).unwrap();
        let edges = doc
            .get("cycle")
            .and_then(cqs_harness::report::Json::as_arr)
            .unwrap();
        let wanted: Vec<f64> = edges
            .iter()
            .filter_map(|e| e.get("wants").and_then(cqs_harness::report::Json::as_f64))
            .collect();
        assert!(wanted.contains(&(a as f64)) && wanted.contains(&(b as f64)));
        w1.complete();
        w2.complete();
        j1.join().unwrap();
        j2.join().unwrap();
    }

    #[test]
    fn watchdog_thread_delivers_reports_and_stops() {
        let id = next_primitive_id("test.watchdog");
        let w = FakeWaiter::new();
        register_waiter!(id, "test.watchdog", w.clone());
        let hits = Arc::new(std::sync::Mutex::new(Vec::new()));
        let hits2 = Arc::clone(&hits);
        let dog = Watchdog::spawn(
            WatchConfig::new()
                .stall_threshold(Duration::from_millis(1))
                .scan_interval(Duration::from_millis(5)),
            move |r| {
                hits2.lock().unwrap().push(r.kind);
            },
        );
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while hits.lock().unwrap().is_empty() {
            assert!(std::time::Instant::now() < deadline, "watchdog never fired");
            std::thread::sleep(Duration::from_millis(5));
        }
        dog.stop();
        w.complete();
    }

    #[test]
    fn gauges_and_holders_round_trip_into_reports() {
        let id = next_primitive_id("test.gauge");
        gauge!(id, "available_permits", 3);
        acquired!(id, "test.gauge", true);
        let mut s = scanner(WatchConfig::new().stall_threshold(Duration::from_millis(0)));
        let w = FakeWaiter::new();
        register_waiter!(id, "test.gauge", w.clone());
        let reports = s.scan();
        let report = reports.first().expect("stall report expected");
        assert!(report
            .gauges
            .iter()
            .any(|g| g.primitive == id && g.name == "available_permits" && g.value == 3));
        assert!(report
            .holders
            .iter()
            .any(|h| h.primitive == id && h.exclusive && h.count == 1));
        released!(id);
        let mut s2 = scanner(WatchConfig::new().stall_threshold(Duration::from_millis(0)));
        let w2 = FakeWaiter::new();
        register_waiter!(id, "test.gauge", w2.clone());
        let reports = s2.scan();
        assert!(reports
            .first()
            .expect("stall report expected")
            .holders
            .iter()
            .all(|h| h.primitive != id));
        w.complete();
        w2.complete();
    }

    #[test]
    fn reports_carry_rss_and_live_segment_totals() {
        let a = next_primitive_id("test.segments.a");
        let b = next_primitive_id("test.segments.b");
        gauge!(a, "live_segments", 3);
        gauge!(b, "live_segments", 4);
        // A negative gauge (transient publish race) must not wrap the sum.
        let c = next_primitive_id("test.segments.c");
        gauge!(c, "live_segments", -1);
        let mut s = scanner(WatchConfig::new().stall_threshold(Duration::from_millis(0)));
        let w = FakeWaiter::new();
        register_waiter!(a, "test.segments.a", w.clone());
        let reports = s.scan();
        let report = reports.first().expect("stall report expected");
        assert!(report.live_segments >= 7, "gauge sum lost: {report:?}");
        if cfg!(target_os = "linux") {
            assert!(
                report.rss_bytes.is_some_and(|r| r > 0),
                "RSS probe must work on Linux"
            );
        }
        let doc = cqs_harness::report::Json::parse(&report.to_json()).unwrap();
        assert!(
            doc.get("live_segments")
                .and_then(cqs_harness::report::Json::as_f64)
                .is_some_and(|v| v >= 7.0),
            "live_segments missing from serialized report"
        );
        // The key is present exactly when the probe worked.
        assert_eq!(
            doc.get("rss_bytes")
                .and_then(cqs_harness::report::Json::as_f64)
                .is_some(),
            report.rss_bytes.is_some()
        );
        // The per-backend reclamation gauge serializes as an object with
        // one key per backend.
        assert_eq!(report.reclaim.len(), 3);
        for backend in ["epoch", "hazard", "owned"] {
            assert!(
                doc.get("reclaim")
                    .and_then(|r| r.get(backend))
                    .and_then(cqs_harness::report::Json::as_f64)
                    .is_some(),
                "reclaim gauge missing backend {backend}"
            );
        }
        w.complete();
    }
}

#[cfg(all(test, not(feature = "watch")))]
mod tests {
    #[test]
    fn disabled_macros_expand_to_nothing() {
        // Compiles because every expansion is empty — the arguments are
        // never evaluated (an `unreachable!` in evaluated position would
        // abort the test), and the inert API reports watch off.
        crate::register_waiter!(unreachable!(), unreachable!(), unreachable!());
        crate::acquired!(unreachable!(), unreachable!(), unreachable!());
        crate::released!(unreachable!());
        crate::gauge!(unreachable!(), unreachable!(), unreachable!());
        assert!(!crate::enabled());
        assert_eq!(crate::next_primitive_id("never.recorded"), 0);
        assert!(crate::spawn_from_env().is_none());
    }

    #[test]
    fn disabled_macros_are_independent_of_the_padded_counter_type() {
        // The stats crate's counters moved to a cache-line-padded backing
        // type; an off-feature `gauge!`/`register_waiter!` call whose
        // argument expressions read such a counter must still expand to
        // nothing — the padded load below is never evaluated.
        use cqs_stats::CachePadded;
        use std::sync::atomic::{AtomicU64, Ordering};
        static PADDED: CachePadded<AtomicU64> = CachePadded::new(AtomicU64::new(0));
        crate::gauge!(0u64, "padded", PADDED.load(Ordering::Relaxed));
        crate::register_waiter!(
            PADDED.load(Ordering::Relaxed),
            "padded",
            unreachable!("never evaluated")
        );
        // Deref still forwards to the inner atomic for real (evaluated)
        // reads, so macro call sites need no `.0` adjustments either way.
        assert_eq!(PADDED.load(Ordering::Relaxed), 0);
    }
}
