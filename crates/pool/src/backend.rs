//! Pool storage backends: the queue (infinite-array) and stack (Treiber)
//! specializations of the abstract blocking pool (paper, Listing 18).
//!
//! Both implement [`PoolBackend`], whose contract mirrors the paper's
//! `tryInsert`/`tryRetrieve`: a failed `try_retrieve` *breaks* the slot (or
//! publishes a failure node) so that the paired `try_insert` — the one whose
//! `size` increment the retriever observed — fails as well, keeping the
//! abstract pool's counter balanced.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use cqs_reclaim::{pin, AtomicArc, Guard};

/// Storage used by [`crate::BlockingPool`]: a bag of elements with
/// *rendezvous-failure* semantics (see module docs).
pub trait PoolBackend<E>: Send + Sync + 'static {
    /// Attempts to add an element.
    ///
    /// # Errors
    ///
    /// Hands the element back if a paired failed retrieval poisoned the
    /// target slot; the caller restarts its logical operation.
    fn try_insert(&self, element: E) -> Result<(), E>;

    /// Attempts to take some element (order unspecified). `None` means the
    /// racing insert this retrieval was paired with has not landed yet; the
    /// corresponding insert attempt is made to fail as well.
    fn try_retrieve(&self) -> Option<E>;
}

// ---------------------------------------------------------------------
// Queue backend
// ---------------------------------------------------------------------

const SLOT_EMPTY: usize = 0;
const SLOT_FULL: usize = 1;
const SLOT_TAKEN: usize = 2;
const SLOT_BROKEN: usize = 3;

struct Slot<E> {
    state: AtomicUsize,
    element: UnsafeCell<Option<E>>,
}

// SAFETY: element handoff is ordered by RMWs on `state`: the inserter writes
// before publishing FULL; the unique retriever (per-slot via fetch-add
// indices) consumes after observing FULL.
unsafe impl<E: Send> Send for Slot<E> {}
unsafe impl<E: Send> Sync for Slot<E> {}

struct QueueSegment<E> {
    id: u64,
    next: AtomicArc<QueueSegment<E>>,
    slots: Box<[Slot<E>]>,
}

impl<E: Send + 'static> QueueSegment<E> {
    fn new(id: u64, size: usize) -> Arc<Self> {
        Arc::new(QueueSegment {
            id,
            next: AtomicArc::null(),
            slots: (0..size)
                .map(|_| Slot {
                    state: AtomicUsize::new(SLOT_EMPTY),
                    element: UnsafeCell::new(None),
                })
                .collect(),
        })
    }
}

/// The queue-based pool storage: an infinite array with independent insert
/// and retrieve counters advanced by fetch-and-add (paper, Listing 18 left).
/// Faster than the stack under contention because the hot path avoids CAS
/// retry loops.
pub struct QueueBackend<E: Send + 'static> {
    insert_idx: AtomicU64,
    retrieve_idx: AtomicU64,
    insert_segm: AtomicArc<QueueSegment<E>>,
    retrieve_segm: AtomicArc<QueueSegment<E>>,
    segment_size: usize,
}

impl<E: Send + 'static> QueueBackend<E> {
    /// Creates an empty queue backend.
    pub fn new() -> Self {
        Self::with_segment_size(16)
    }

    /// Creates an empty queue backend with the given cells-per-segment.
    pub fn with_segment_size(segment_size: usize) -> Self {
        assert!(segment_size > 0, "segment size must be positive");
        let first = QueueSegment::new(0, segment_size);
        QueueBackend {
            insert_idx: AtomicU64::new(0),
            retrieve_idx: AtomicU64::new(0),
            insert_segm: AtomicArc::new(Some(Arc::clone(&first))),
            retrieve_segm: AtomicArc::new(Some(first)),
            segment_size,
        }
    }

    /// Walks (creating as needed) from `start` to the segment with `id`,
    /// advancing `head` so fully processed segments become unreferenced and
    /// are freed. `start` must have been read from `head` *before* the
    /// index fetch-add (paper, Listing 14): that ordering guarantees
    /// `start.id <= id`, i.e. the target segment is reachable forward.
    fn locate(
        &self,
        head: &AtomicArc<QueueSegment<E>>,
        start: Arc<QueueSegment<E>>,
        id: u64,
        guard: &Guard,
    ) -> Arc<QueueSegment<E>> {
        debug_assert!(
            start.id <= id,
            "segment {} not reachable from {}",
            id,
            start.id
        );
        let mut cur = start;
        while cur.id < id {
            let next = match cur.next.load(guard) {
                Some(next) => next,
                None => {
                    let fresh = QueueSegment::new(cur.id + 1, self.segment_size);
                    match cur.next.compare_exchange_null(Arc::clone(&fresh), guard) {
                        Ok(()) => fresh,
                        Err(_) => cur
                            .next
                            .load(guard)
                            .expect("next observed non-null cannot revert"),
                    }
                }
            };
            cur = next;
        }
        // Best-effort head advance (only forward).
        loop {
            let h = head.load(guard).expect("pool heads are never null");
            if h.id >= cur.id {
                break;
            }
            if head
                .compare_exchange(Arc::as_ptr(&h), Some(Arc::clone(&cur)), guard)
                .is_ok()
            {
                break;
            }
        }
        cur
    }
}

impl<E: Send + 'static> Default for QueueBackend<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E: Send + 'static> PoolBackend<E> for QueueBackend<E> {
    fn try_insert(&self, element: E) -> Result<(), E> {
        let guard = pin();
        // Read the head before taking an index (see `locate`).
        let start = self
            .insert_segm
            .load(&guard)
            .expect("pool heads are never null");
        let i = self.insert_idx.fetch_add(1, Ordering::SeqCst);
        let segment = self.locate(
            &self.insert_segm,
            start,
            i / self.segment_size as u64,
            &guard,
        );
        let slot = &segment.slots[(i % self.segment_size as u64) as usize];
        // SAFETY: per-slot unique inserter (indices are handed out by
        // fetch-add); published by the CAS below.
        unsafe { *slot.element.get() = Some(element) };
        match slot
            .state
            .compare_exchange(SLOT_EMPTY, SLOT_FULL, Ordering::SeqCst, Ordering::SeqCst)
        {
            Ok(_) => Ok(()),
            // SAFETY: never published; we still own the slot's element.
            Err(_) => Err(unsafe { (*slot.element.get()).take() }
                .expect("unpublished element must still be present")),
        }
    }

    fn try_retrieve(&self) -> Option<E> {
        let guard = pin();
        // Read the head before taking an index (see `locate`).
        let start = self
            .retrieve_segm
            .load(&guard)
            .expect("pool heads are never null");
        let i = self.retrieve_idx.fetch_add(1, Ordering::SeqCst);
        let segment = self.locate(
            &self.retrieve_segm,
            start,
            i / self.segment_size as u64,
            &guard,
        );
        let slot = &segment.slots[(i % self.segment_size as u64) as usize];
        match slot.state.swap(SLOT_BROKEN, Ordering::SeqCst) {
            // SAFETY: the swap observed FULL; the inserter published the
            // element and we are the slot's unique retriever.
            SLOT_FULL => {
                slot.state.store(SLOT_TAKEN, Ordering::SeqCst);
                Some(
                    unsafe { (*slot.element.get()).take() }
                        .expect("full slot must hold an element"),
                )
            }
            SLOT_EMPTY => None, // slot now broken; the paired insert fails
            other => unreachable!("pool slot retrieved twice (state {other})"),
        }
    }
}

impl<E: Send + 'static> std::fmt::Debug for QueueBackend<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueueBackend")
            .field("insert_idx", &self.insert_idx.load(Ordering::Relaxed))
            .field("retrieve_idx", &self.retrieve_idx.load(Ordering::Relaxed))
            .finish()
    }
}

impl<E: Send + 'static> Drop for QueueBackend<E> {
    fn drop(&mut self) {
        // Forward-only chains cannot form cycles, but long chains would
        // recurse on drop; flatten iteratively starting from the earlier
        // head.
        let guard = pin();
        let a = self.insert_segm.take(&guard);
        let b = self.retrieve_segm.take(&guard);
        let mut cur = match (a, b) {
            (Some(a), Some(b)) => Some(if a.id <= b.id { a } else { b }),
            (a, b) => a.or(b),
        };
        while let Some(segment) = cur {
            cur = segment.next.take(&guard);
        }
    }
}

// ---------------------------------------------------------------------
// Stack backend
// ---------------------------------------------------------------------

struct Node<E> {
    /// `None` marks a *failure node* published by an unlucky retrieval.
    element: UnsafeCell<Option<E>>,
    failed: bool,
    next: Option<Arc<Node<E>>>,
}

// SAFETY: `element` is consumed only by the thread whose CAS popped this
// node from the stack, which strictly follows the push that wrote it.
unsafe impl<E: Send> Send for Node<E> {}
unsafe impl<E: Send> Sync for Node<E> {}

/// The stack-based pool storage: a Treiber stack that hands out the most
/// recently inserted ("hottest") element, with failure nodes standing in for
/// broken slots (paper, Listing 18 right).
pub struct StackBackend<E: Send + 'static> {
    top: AtomicArc<Node<E>>,
}

impl<E: Send + 'static> StackBackend<E> {
    /// Creates an empty stack backend.
    pub fn new() -> Self {
        StackBackend {
            top: AtomicArc::null(),
        }
    }
}

impl<E: Send + 'static> Default for StackBackend<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E: Send + 'static> PoolBackend<E> for StackBackend<E> {
    fn try_insert(&self, element: E) -> Result<(), E> {
        let guard = pin();
        let mut element = element;
        loop {
            let top = self.top.load(&guard);
            match &top {
                Some(node) if node.failed => {
                    // Annihilate one failure node and fail this insert: the
                    // retrieval that published it already gave up.
                    let top_ptr = Arc::as_ptr(node);
                    if self
                        .top
                        .compare_exchange(top_ptr, node.next.clone(), &guard)
                        .is_ok()
                    {
                        return Err(element);
                    }
                }
                _ => {
                    let top_ptr = top.as_ref().map_or(std::ptr::null(), Arc::as_ptr);
                    let node = Arc::new(Node {
                        element: UnsafeCell::new(Some(element)),
                        failed: false,
                        next: top,
                    });
                    match self.top.compare_exchange(top_ptr, Some(node), &guard) {
                        Ok(()) => return Ok(()),
                        Err(rejected) => {
                            // Recover the element from the unpublished node
                            // and retry.
                            let node = rejected.expect("a node was passed in");
                            // SAFETY: the node was never published; we are
                            // its only owner.
                            element = unsafe { (*node.element.get()).take() }
                                .expect("unpublished node keeps its element");
                        }
                    }
                }
            }
        }
    }

    fn try_retrieve(&self) -> Option<E> {
        let guard = pin();
        loop {
            let top = self.top.load(&guard);
            match &top {
                None => {
                    // Publish a failure node so the paired insert fails too.
                    let node = Arc::new(Node {
                        element: UnsafeCell::new(None),
                        failed: true,
                        next: None,
                    });
                    if self
                        .top
                        .compare_exchange(std::ptr::null(), Some(node), &guard)
                        .is_ok()
                    {
                        return None;
                    }
                }
                Some(node) if node.failed => {
                    let node = Arc::new(Node {
                        element: UnsafeCell::new(None),
                        failed: true,
                        next: top.clone(),
                    });
                    if self
                        .top
                        .compare_exchange(Arc::as_ptr(top.as_ref().unwrap()), Some(node), &guard)
                        .is_ok()
                    {
                        return None;
                    }
                }
                Some(node) => {
                    let top_ptr = Arc::as_ptr(node);
                    if self
                        .top
                        .compare_exchange(top_ptr, node.next.clone(), &guard)
                        .is_ok()
                    {
                        // SAFETY: our CAS popped this node; the popper is the
                        // unique consumer of its element.
                        return Some(
                            unsafe { (*node.element.get()).take() }
                                .expect("live node must hold an element"),
                        );
                    }
                }
            }
        }
    }
}

impl<E: Send + 'static> std::fmt::Debug for StackBackend<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("StackBackend")
    }
}

impl<E: Send + 'static> Drop for StackBackend<E> {
    fn drop(&mut self) {
        // Flatten the chain iteratively to avoid recursive drops on long
        // stacks.
        let guard = pin();
        let mut cur = self.top.take(&guard);
        while let Some(node) = cur {
            cur = match Arc::try_unwrap(node) {
                Ok(mut node) => node.next.take(),
                Err(_) => None, // shared elsewhere; their drop handles it
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<B: PoolBackend<u64>>(backend: &B) {
        backend.try_insert(1).unwrap();
        backend.try_insert(2).unwrap();
        let a = backend.try_retrieve().unwrap();
        let b = backend.try_retrieve().unwrap();
        assert_eq!(
            {
                let mut v = vec![a, b];
                v.sort_unstable();
                v
            },
            vec![1, 2]
        );
    }

    #[test]
    fn queue_round_trip() {
        roundtrip(&QueueBackend::new());
    }

    #[test]
    fn stack_round_trip() {
        roundtrip(&StackBackend::new());
    }

    #[test]
    fn queue_is_fifo() {
        let q = QueueBackend::new();
        for v in 0..10u64 {
            q.try_insert(v).unwrap();
        }
        for v in 0..10u64 {
            assert_eq!(q.try_retrieve(), Some(v));
        }
    }

    #[test]
    fn stack_is_lifo() {
        let s = StackBackend::new();
        for v in 0..10u64 {
            s.try_insert(v).unwrap();
        }
        for v in (0..10u64).rev() {
            assert_eq!(s.try_retrieve(), Some(v));
        }
    }

    #[test]
    fn queue_retrieve_from_empty_breaks_paired_insert() {
        let q = QueueBackend::<u64>::new();
        assert_eq!(q.try_retrieve(), None);
        // The insert paired with that retrieval hits the broken slot.
        assert_eq!(q.try_insert(7), Err(7));
        // Subsequent pairs work.
        q.try_insert(8).unwrap();
        assert_eq!(q.try_retrieve(), Some(8));
    }

    #[test]
    fn stack_retrieve_from_empty_fails_paired_insert() {
        let s = StackBackend::<u64>::new();
        assert_eq!(s.try_retrieve(), None);
        assert_eq!(s.try_insert(7), Err(7));
        s.try_insert(8).unwrap();
        assert_eq!(s.try_retrieve(), Some(8));
    }

    #[test]
    fn queue_spans_many_segments() {
        let q = QueueBackend::with_segment_size(2);
        for v in 0..100u64 {
            q.try_insert(v).unwrap();
        }
        for v in 0..100u64 {
            assert_eq!(q.try_retrieve(), Some(v));
        }
    }

    fn conservation_stress<B: PoolBackend<u64>>(backend: Arc<B>) {
        use std::sync::atomic::AtomicU64;
        const THREADS: usize = 6;
        const OPS: usize = 3_000;
        let inserted = Arc::new(AtomicU64::new(0));
        let retrieved = Arc::new(AtomicU64::new(0));
        let mut joins = Vec::new();
        for t in 0..THREADS {
            let backend = Arc::clone(&backend);
            let inserted = Arc::clone(&inserted);
            let retrieved = Arc::clone(&retrieved);
            joins.push(std::thread::spawn(move || {
                for i in 0..OPS {
                    let v = (t * OPS + i) as u64;
                    if i % 2 == 0 {
                        if backend.try_insert(v).is_ok() {
                            inserted.fetch_add(v, Ordering::SeqCst);
                        }
                    } else if let Some(got) = backend.try_retrieve() {
                        retrieved.fetch_add(got, Ordering::SeqCst);
                    }
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        // Drain the remainder.
        while let Some(got) = backend.try_retrieve() {
            retrieved.fetch_add(got, Ordering::SeqCst);
        }
        assert_eq!(
            inserted.load(Ordering::SeqCst),
            retrieved.load(Ordering::SeqCst),
            "elements lost or duplicated"
        );
    }

    #[test]
    fn queue_conservation_stress() {
        conservation_stress(Arc::new(QueueBackend::new()));
    }

    #[test]
    fn stack_conservation_stress() {
        conservation_stress(Arc::new(StackBackend::new()));
    }
}
