#![warn(missing_docs)]

//! # `cqs-pool` — blocking pools of shared resources on top of CQS
//!
//! A *blocking pool* maintains a set of expensive, reusable elements
//! (database connections, sockets, buffers): [`BlockingPool::take`]
//! retrieves one or suspends until somebody returns one;
//! [`BlockingPool::put`] hands an element to the first waiting taker or
//! stores it. Waiting takers are served in FIFO order and may abort at any
//! time; elements are never lost (paper, §4.4 and Appendix D,
//! Listings 17/18).
//!
//! Two storage backends are provided:
//!
//! * [`QueueBackend`] (use via [`QueuePool`]) — an infinite-array queue,
//!   fetch-and-add on the contended path, the faster option;
//! * [`StackBackend`] (use via [`StackPool`]) — a Treiber stack returning
//!   the most recently used ("hottest") element.
//!
//! Both pools are *not* linearizable — under races elements can be handed
//! out slightly out of order — which is fine for a pool, whose contents are
//! unordered by contract.
//!
//! # Example
//!
//! ```
//! use cqs_pool::QueuePool;
//!
//! let pool: QueuePool<String> = QueuePool::new();
//! pool.put("conn-a".to_string());
//! pool.put("conn-b".to_string());
//!
//! let conn = pool.take().wait().unwrap();
//! // ... use the connection ...
//! pool.put(conn);
//! ```

mod backend;
mod sharded;

pub use backend::{PoolBackend, QueueBackend, StackBackend};
pub use sharded::{ShardedPool, ShardedQueuePool, ShardedStackPool, MAX_DEFAULT_SHARDS};

use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::{Arc, Weak};

use cqs_core::{CancellationMode, Cqs, CqsCallbacks, CqsConfig, CqsFuture, Suspend};

/// A pool over the queue backend: elements come back in insertion order.
pub type QueuePool<E> = BlockingPool<E, QueueBackend<E>>;

/// A pool over the stack backend: the most recently returned element is
/// handed out first.
pub type StackPool<E> = BlockingPool<E, StackBackend<E>>;

struct PoolShared<E: Send + 'static, B: PoolBackend<E>> {
    /// `size >= 0`: elements stored; `size < 0`: waiting takers (negated).
    size: AtomicI64,
    backend: B,
    cqs: Cqs<E, PoolCallbacks<E, B>>,
}

/// Hook a sharded wrapper installs to learn that a taker's cancellation
/// refused an in-flight resume and re-stored its element. See
/// [`PoolCallbacks::complete_refused_resume`].
pub(crate) type RefusalHook = Box<dyn Fn() + Send + Sync>;

/// Smart-cancellation hooks of the abstract pool (paper, Listing 17).
///
/// Holds a weak reference to the pool internals: a strong one would form a
/// permanent `Cqs -> callbacks -> pool -> Cqs` cycle. If a refused
/// resumption arrives after the pool was dropped, the element is dropped
/// with it.
struct PoolCallbacks<E: Send + 'static, B: PoolBackend<E>> {
    shared: Weak<PoolShared<E, B>>,
    /// Invoked after a refusal has fully settled (element back in this
    /// shard's store). A refusal can settle on the *cancelling* thread —
    /// when the resume delegated its element to the mid-flight canceller —
    /// after the putting thread has long returned, so a sharded wrapper
    /// cannot run its no-idle-element scan from the put path alone; this
    /// hook hands it the only thread that knows.
    on_refusal: Option<RefusalHook>,
}

impl<E: Send + 'static, B: PoolBackend<E>> CqsCallbacks<E> for PoolCallbacks<E, B> {
    fn on_cancellation(&self) -> bool {
        let Some(shared) = self.shared.upgrade() else {
            // Pool dropped: treat the waiter as plainly removed.
            return true;
        };
        // Identical to the semaphore: deregister the waiter, or refuse the
        // incoming resume if a put() already committed to it.
        let s = shared.size.fetch_add(1, Ordering::SeqCst);
        s < 0
    }

    fn complete_refused_resume(&self, element: E) {
        if let Some(shared) = self.shared.upgrade() {
            // Return the refused element to the pool (paper: `if
            // !tryInsert(e): put(e)`).
            if let Err(element) = shared.backend.try_insert(element) {
                shared.put(element);
            }
            if let Some(hook) = &self.on_refusal {
                hook();
            }
        }
    }
}

/// A blocking pool of shared elements (see the crate docs).
///
/// Cloning is cheap and yields another handle to the same pool.
pub struct BlockingPool<E: Send + 'static, B: PoolBackend<E>> {
    shared: Arc<PoolShared<E, B>>,
}

impl<E: Send + 'static, B: PoolBackend<E>> Clone for BlockingPool<E, B> {
    fn clone(&self) -> Self {
        BlockingPool {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<E: Send + 'static, B: PoolBackend<E> + Default> BlockingPool<E, B> {
    /// Creates an empty pool with a default-constructed backend.
    pub fn new() -> Self {
        Self::with_backend(B::default())
    }
}

impl<E: Send + 'static, B: PoolBackend<E> + Default> Default for BlockingPool<E, B> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E: Send + 'static, B: PoolBackend<E>> BlockingPool<E, B> {
    /// Creates an empty pool around the given backend.
    pub fn with_backend(backend: B) -> Self {
        Self::with_backend_config(
            backend,
            "pool.take",
            CqsConfig::DEFAULT_FREELIST_SLOTS,
            None,
            None,
        )
    }

    /// Creates an empty pool around the given backend whose taker queue
    /// uses the given memory-reclamation backend instead of the
    /// process-wide [`cqs_core::default_reclaimer`].
    pub fn with_backend_and_reclaimer(backend: B, reclaimer: cqs_core::ReclaimerKind) -> Self {
        Self::with_backend_config(
            backend,
            "pool.take",
            CqsConfig::DEFAULT_FREELIST_SLOTS,
            None,
            Some(reclaimer),
        )
    }

    /// Builds a shard of a sharded pool: the watchdog label distinguishes
    /// shard queues in stall reports and `freelist_slots` is scaled down
    /// by the shard count, bounding the idle segments pinned by the whole
    /// primitive to `max(DEFAULT_FREELIST_SLOTS, shards)` — the
    /// single-queue envelope up to 4 shards, one per shard beyond that
    /// (each shard keeps at least one slot). `on_refusal` is invoked
    /// whenever a taker's cancellation refuses an in-flight resume on this
    /// shard (re-storing the element here), possibly on the cancelling
    /// thread after the putter already returned — the wrapper runs its
    /// cross-shard migration scan from it.
    pub(crate) fn with_backend_config(
        backend: B,
        label: &'static str,
        freelist_slots: usize,
        on_refusal: Option<RefusalHook>,
        reclaimer: Option<cqs_core::ReclaimerKind>,
    ) -> Self {
        let mut config = CqsConfig::new()
            .cancellation_mode(CancellationMode::Smart)
            .freelist_slots(freelist_slots)
            .label(label);
        if let Some(kind) = reclaimer {
            config = config.reclaimer(kind);
        }
        let shared = Arc::new_cyclic(|weak: &Weak<PoolShared<E, B>>| PoolShared {
            size: AtomicI64::new(0),
            backend,
            cqs: Cqs::new(
                config,
                PoolCallbacks {
                    shared: Weak::clone(weak),
                    on_refusal,
                },
            ),
        });
        BlockingPool { shared }
    }

    /// A racy snapshot of the number of stored elements (zero if takers are
    /// waiting).
    pub fn len(&self) -> usize {
        self.shared.size.load(Ordering::SeqCst).max(0) as usize
    }

    /// Whether no elements are currently stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Watchdog id keying this pool's waiter records and its size gauge in
    /// cqs-watch reports. Always `0` when the `watch` feature is off.
    pub fn watch_id(&self) -> u64 {
        self.shared.cqs.watch_id()
    }

    /// Returns `element` to the pool, handing it directly to the first
    /// waiting [`take`](Self::take) if there is one.
    pub fn put(&self, element: E) {
        self.shared.put(element);
    }

    /// Crate-internal sibling of [`put`](Self::put) reporting whether the
    /// element was stored (`true`) or handed to a waiting taker
    /// (`false`); the sharded pool runs its migration scan exactly when
    /// an element was stored.
    pub(crate) fn put_reporting(&self, element: E) -> bool {
        self.shared.put(element)
    }

    /// Crate-internal sibling of [`put_many`](Self::put_many) reporting
    /// how many elements were stored rather than handed to takers.
    pub(crate) fn put_many_reporting(&self, elements: impl IntoIterator<Item = E>) -> usize {
        self.shared.put_many(elements.into_iter().collect())
    }

    /// Returns a whole batch of elements at once: a single `fetch_add` on
    /// the size word, and every waiting taker the batch covers is served in
    /// **one** batched CQS traversal ([`cqs_core::Cqs::resume_n`]) whose
    /// wake-ups fire only after the sweep. Leftover elements are stored in
    /// the backend. The bulk analogue of calling [`put`](Self::put) per
    /// element — useful when refilling a drained pool (e.g. re-seeding
    /// connections after a reconnect) with many takers parked.
    pub fn put_many(&self, elements: impl IntoIterator<Item = E>) {
        self.shared.put_many(elements.into_iter().collect());
    }

    /// Retrieves an element: immediately if one is stored, otherwise the
    /// returned future completes when a [`put`](Self::put) hands one over
    /// (FIFO among waiting takers). Cancel the future to abort waiting.
    pub fn take(&self) -> CqsFuture<E> {
        let shared = &self.shared;
        loop {
            // Fail fast on a closed pool before touching `size`; past this
            // check a racing `close()` is settled by the CQS itself.
            if shared.cqs.is_closed() {
                return CqsFuture::cancelled();
            }
            let s = shared.size.fetch_sub(1, Ordering::SeqCst);
            cqs_watch::gauge!(shared.cqs.watch_id(), "size", s - 1);
            if s > 0 {
                // An element should be there; a racing put() that announced
                // itself but has not inserted yet makes us restart.
                if let Some(element) = shared.backend.try_retrieve() {
                    cqs_stats::bump!(immediate_hits);
                    return CqsFuture::immediate(element);
                }
            } else {
                match shared.cqs.suspend() {
                    Suspend::Future(f) => return f,
                    Suspend::Broken => {
                        unreachable!("pool uses asynchronous resumption; cells never break")
                    }
                }
            }
        }
    }

    /// Attempts to retrieve a *stored* element without waiting.
    ///
    /// Weak sibling of [`take`](Self::take): it only CASes the size word
    /// downward while it is positive, so it never queues and never claims
    /// an element destined for a FIFO waiter. It is weak because an
    /// element a racing [`put`](Self::put) has announced but not yet
    /// inserted is invisible — `None` does not prove the pool was empty at
    /// any single instant. When the CAS wins but the paired insert broke
    /// (the backend's restart protocol), the retry loop simply runs again:
    /// the racing `put` restarts with a fresh size increment, so the
    /// accounting stays balanced. Sharded pools use this as their local
    /// fast path, steal path, and element-migration source.
    pub fn try_take_weak(&self) -> Option<E> {
        loop {
            let mut s = self.shared.size.load(Ordering::SeqCst);
            loop {
                if s <= 0 {
                    return None;
                }
                match self.shared.size.compare_exchange(
                    s,
                    s - 1,
                    Ordering::SeqCst,
                    Ordering::SeqCst,
                ) {
                    Ok(_) => break,
                    Err(actual) => s = actual,
                }
            }
            cqs_watch::gauge!(self.shared.cqs.watch_id(), "size", s - 1);
            if let Some(element) = self.shared.backend.try_retrieve() {
                return Some(element);
            }
            // The announced element's insert broke; its put() re-increments
            // and re-inserts, so retry from a fresh size read.
        }
    }

    /// A racy snapshot of the number of takers currently queued (zero if
    /// elements are stored).
    pub fn waiting_takers(&self) -> usize {
        (-self.shared.size.load(Ordering::SeqCst)).max(0) as usize
    }

    /// Number of live queue segments backing this pool's taker queue
    /// (diagnostics; the soak scenario tracks it to prove memory stays
    /// proportional to live waiters).
    pub fn live_segments(&self) -> usize {
        self.shared.cqs.live_segments()
    }

    /// Closes the pool: every waiting taker is woken with an error (its
    /// future reports [`cqs_core::Cancelled`]) and every subsequent
    /// [`take`](Self::take) fails fast without queuing. Stored elements
    /// stay in the pool and [`put`](Self::put) keeps working, so owners of
    /// checked-out elements can still return them for orderly teardown.
    /// Closing twice is a no-op.
    pub fn close(&self) {
        self.shared.cqs.close();
    }

    /// Whether [`close`](Self::close) was called.
    pub fn is_closed(&self) -> bool {
        self.shared.cqs.is_closed()
    }
}

impl<E: Send + 'static, B: PoolBackend<E>> PoolShared<E, B> {
    /// Returns `true` if the element was stored in the backend, `false`
    /// if it was handed to a waiting taker. The decision comes from the
    /// put's own `fetch_add`, never from a `waiting_takers()` snapshot —
    /// a taker counted beforehand may cancel concurrently (its
    /// `on_cancellation` increments the size word first), turning the
    /// would-be handoff into a store. The sharded pool keys its migration
    /// scan off this.
    fn put(&self, mut element: E) -> bool {
        loop {
            let s = self.size.fetch_add(1, Ordering::SeqCst);
            cqs_watch::gauge!(self.cqs.watch_id(), "size", s + 1);
            if s < 0 {
                // Resume the first waiting taker; with smart cancellation
                // and asynchronous resumption this cannot fail.
                self.cqs
                    .resume(element)
                    .unwrap_or_else(|_| unreachable!("smart async resume cannot fail"));
                return false;
            }
            match self.backend.try_insert(element) {
                Ok(()) => return true,
                // A racing take() discovered our increment but broke the
                // slot; its decrement and our increment cancel out, restart.
                Err(e) => element = e,
            }
        }
    }

    /// Returns how many of the elements were stored rather than handed to
    /// waiting takers (see [`put`](PoolShared::put) for why a snapshot
    /// cannot provide this).
    fn put_many(&self, elements: Vec<E>) -> usize {
        let k = elements.len() as i64;
        if k == 0 {
            return 0;
        }
        let s = self.size.fetch_add(k, Ordering::SeqCst);
        cqs_watch::gauge!(self.cqs.watch_id(), "size", s + k);
        // Exactly the increments that landed below zero belong to waiting
        // takers; serve them all in one batched traversal.
        let to_waiters = (-s).clamp(0, k) as usize;
        let mut elements = elements.into_iter();
        if to_waiters > 0 {
            let failed = self
                .cqs
                .resume_n(elements.by_ref().take(to_waiters), to_waiters);
            debug_assert!(failed.is_empty(), "smart async resume cannot fail");
        }
        let mut stored = 0;
        for element in elements {
            // The remaining increments announced stored elements; insert
            // them. A broken slot means a racing take() absorbed this
            // element's increment — `put` restarts with a fresh one.
            match self.backend.try_insert(element) {
                Ok(()) => stored += 1,
                Err(e) => stored += usize::from(self.put(e)),
            }
        }
        stored
    }
}

impl<E: Send + 'static, B: PoolBackend<E>> std::fmt::Debug for BlockingPool<E, B> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BlockingPool")
            .field("size", &self.shared.size.load(Ordering::Relaxed))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicUsize;

    fn put_take_roundtrip<B: PoolBackend<u64> + Default>() {
        let pool: BlockingPool<u64, B> = BlockingPool::new();
        assert!(pool.is_empty());
        pool.put(1);
        pool.put(2);
        assert_eq!(pool.len(), 2);
        let a = pool.take().wait().unwrap();
        let b = pool.take().wait().unwrap();
        assert_eq!([a, b].iter().collect::<HashSet<_>>().len(), 2);
        assert!(pool.is_empty());
    }

    #[test]
    fn queue_pool_roundtrip() {
        put_take_roundtrip::<QueueBackend<u64>>();
    }

    #[test]
    fn stack_pool_roundtrip() {
        put_take_roundtrip::<StackBackend<u64>>();
    }

    #[test]
    fn take_suspends_until_put() {
        let pool: Arc<QueuePool<u64>> = Arc::new(QueuePool::new());
        let mut f = pool.take();
        assert_eq!(f.try_get(), cqs_core::FutureState::Pending);
        pool.put(42);
        assert_eq!(f.wait(), Ok(42));
    }

    #[test]
    fn waiting_takers_are_fifo() {
        let pool: QueuePool<u64> = QueuePool::new();
        let f1 = pool.take();
        let f2 = pool.take();
        pool.put(1);
        pool.put(2);
        assert_eq!(f1.wait(), Ok(1));
        assert_eq!(f2.wait(), Ok(2));
    }

    #[test]
    fn stack_pool_returns_hottest_element() {
        let pool: StackPool<u64> = StackPool::new();
        pool.put(1);
        pool.put(2);
        assert_eq!(pool.take().wait(), Ok(2), "stack pool must be LIFO");
    }

    #[test]
    fn cancelled_taker_is_skipped() {
        let pool: QueuePool<u64> = QueuePool::new();
        let f1 = pool.take();
        let f2 = pool.take();
        assert!(f1.cancel());
        pool.put(9);
        assert_eq!(f2.wait(), Ok(9));
    }

    #[test]
    fn refused_resume_returns_element_to_pool() {
        for _ in 0..100 {
            let pool: Arc<QueuePool<u64>> = Arc::new(QueuePool::new());
            let f = pool.take();
            let p2 = Arc::clone(&pool);
            let putter = std::thread::spawn(move || p2.put(5));
            if !f.cancel() {
                // The put resumed us first; return the element.
                pool.put(f.wait().unwrap());
            }
            putter.join().unwrap();
            // Whatever the interleaving, the element must be retrievable.
            assert_eq!(pool.take().wait(), Ok(5));
        }
    }

    #[test]
    fn elements_conserved_under_concurrency() {
        const THREADS: usize = 8;
        const ELEMENTS: u64 = 4;
        const OPS: usize = 2_000;
        let pool: Arc<QueuePool<u64>> = Arc::new(QueuePool::new());
        for e in 0..ELEMENTS {
            pool.put(e);
        }
        let held = Arc::new(AtomicUsize::new(0));
        let mut joins = Vec::new();
        for _ in 0..THREADS {
            let pool = Arc::clone(&pool);
            let held = Arc::clone(&held);
            joins.push(std::thread::spawn(move || {
                for _ in 0..OPS {
                    let e = pool.take().wait().unwrap();
                    let now = held.fetch_add(1, Ordering::SeqCst) + 1;
                    assert!(now <= ELEMENTS as usize, "more elements in use than exist");
                    held.fetch_sub(1, Ordering::SeqCst);
                    pool.put(e);
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        // All elements are back and distinct.
        let mut back = HashSet::new();
        for _ in 0..ELEMENTS {
            back.insert(pool.take().wait().unwrap());
        }
        assert_eq!(back.len(), ELEMENTS as usize, "elements lost or duplicated");
    }

    #[test]
    fn conservation_with_cancellation_storm() {
        const THREADS: usize = 6;
        const ELEMENTS: u64 = 2;
        const OPS: usize = 1_500;
        let pool: Arc<StackPool<u64>> = Arc::new(StackPool::new());
        for e in 0..ELEMENTS {
            pool.put(e);
        }
        let mut joins = Vec::new();
        for t in 0..THREADS {
            let pool = Arc::clone(&pool);
            joins.push(std::thread::spawn(move || {
                for i in 0..OPS {
                    let f = pool.take();
                    if (i + t) % 3 == 0 && f.cancel() {
                        continue;
                    }
                    let e = f.wait().unwrap();
                    pool.put(e);
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        let mut back = HashSet::new();
        for _ in 0..ELEMENTS {
            back.insert(pool.take().wait().unwrap());
        }
        assert_eq!(back.len(), ELEMENTS as usize, "elements lost or duplicated");
    }

    /// `put_many` serves every parked taker in one batched traversal and
    /// stores the leftovers.
    #[test]
    fn put_many_serves_waiters_and_stores_the_rest() {
        let pool: QueuePool<u64> = QueuePool::new();
        let f1 = pool.take();
        let f2 = pool.take();
        pool.put_many([10, 11, 12, 13]);
        assert_eq!(f1.wait(), Ok(10), "takers are FIFO");
        assert_eq!(f2.wait(), Ok(11));
        assert_eq!(pool.len(), 2, "leftovers are stored");
        let mut rest = HashSet::new();
        rest.insert(pool.take().wait().unwrap());
        rest.insert(pool.take().wait().unwrap());
        assert_eq!(rest, HashSet::from([12, 13]));
        pool.put_many(std::iter::empty()); // no-op
        assert!(pool.is_empty());
    }

    /// Batched refills racing concurrent takers never lose or duplicate an
    /// element.
    #[test]
    fn put_many_conserves_elements_under_concurrency() {
        const TAKERS: usize = 4;
        const ROUNDS: usize = 250;
        const BATCH: usize = 8;
        let pool: Arc<QueuePool<u64>> = Arc::new(QueuePool::new());
        let mut joins = Vec::new();
        for _ in 0..TAKERS {
            let pool = Arc::clone(&pool);
            joins.push(std::thread::spawn(move || {
                let mut sum = 0u64;
                for _ in 0..ROUNDS * BATCH / TAKERS {
                    sum += pool.take().wait().unwrap();
                }
                sum
            }));
        }
        let putter = {
            let pool = Arc::clone(&pool);
            std::thread::spawn(move || {
                for r in 0..ROUNDS as u64 {
                    let base = r * BATCH as u64;
                    pool.put_many(base..base + BATCH as u64);
                }
            })
        };
        putter.join().unwrap();
        let total: u64 = joins.into_iter().map(|j| j.join().unwrap()).sum();
        let n = (ROUNDS * BATCH) as u64;
        assert_eq!(total, n * (n - 1) / 2, "elements lost or duplicated");
        assert!(pool.is_empty());
    }

    #[test]
    fn close_wakes_takers_and_keeps_elements() {
        let pool: QueuePool<u64> = QueuePool::new();
        pool.put(7);
        let _ = pool.take().wait().unwrap();
        let waiter = pool.take();
        assert!(!pool.is_closed());
        pool.close();
        assert!(pool.is_closed());
        assert!(
            waiter.wait().is_err(),
            "queued taker must be woken with an error"
        );
        assert!(
            pool.take().wait().is_err(),
            "take after close must fail fast"
        );
        // A checked-out element can still come home after close.
        pool.put(7);
        assert_eq!(pool.len(), 1);
        pool.close(); // double close is a no-op
    }

    #[test]
    fn dropping_pool_with_waiters_is_safe() {
        let pool: QueuePool<u64> = QueuePool::new();
        let futures: Vec<_> = (0..4).map(|_| pool.take()).collect();
        drop(pool);
        for f in futures {
            let _ = f.cancel();
        }
    }
}
