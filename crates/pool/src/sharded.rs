//! A sharded blocking pool: N per-shard CQS-backed [`BlockingPool`]s
//! behind one logical element store.
//!
//! Mirrors `cqs-sync`'s `ShardedSemaphore`: each thread routes through a
//! home shard ([`cqs_core::shard::home_shard`]), takes hit the home store
//! first ([`BlockingPool::try_take_weak`]), miss into one bounded steal
//! pass over the sibling stores, and park in the home shard's FIFO taker
//! queue only on a global miss. Cancellation, timeouts and close flow
//! through the ordinary per-shard CQS paths.
//!
//! Elements — unlike semaphore credit — cannot be deferred: a stored
//! element next to a parked remote taker is a lost wake-up, and a pool has
//! no "holder count" telling a put that more puts are coming. Every put
//! that stores locally therefore runs a migration scan immediately:
//! starving sibling shards are served from the home store in one
//! [`BlockingPool::put_many`] batch each (the `Cqs::resume_n` machinery).
//! Whether a put stored is decided by its own `fetch_add` on the size
//! word (never by a `waiting_takers()` snapshot, which a concurrent
//! taker cancellation can invalidate), and a settle check also runs
//! after a served handoff, because the taker's cancellation can refuse
//! the in-flight resume and re-store the element. A refusal can even
//! settle on the *cancelling* thread after the putter returned (the
//! resume delegates its element to a mid-flight canceller), so each
//! shard additionally reports settled refusals through a hook that
//! re-runs the scan from the cancelling thread. Combined with the
//! taker-side re-scan after parking, the bank-vs-park race always
//! resolves (each side's write precedes its read of the other's word,
//! SeqCst) — no element idles while a taker waits.
//!
//! # Fairness, precisely
//!
//! Takers are FIFO **within a shard**, not across shards; a stored element
//! may be claimed by a barging local take or a steal ahead of takers
//! parked on other shards only inside the put-to-migration race window.
//! Pools are unordered by contract, so element identity never depends on
//! routing.

use std::sync::{Arc, Weak};

use cqs_core::{Cancelled, CqsFuture};

use crate::{BlockingPool, PoolBackend, QueueBackend, RefusalHook, StackBackend};

/// Default cap on [`ShardedPool::new`]'s shard count; see
/// [`cqs_core::shard::default_shard_count`].
pub const MAX_DEFAULT_SHARDS: usize = 8;

/// A sharded pool over the queue backend.
pub type ShardedQueuePool<E> = ShardedPool<E, QueueBackend<E>>;

/// A sharded pool over the stack backend (hottest element first, per
/// shard).
pub type ShardedStackPool<E> = ShardedPool<E, StackBackend<E>>;

/// A blocking pool sharded over N per-shard CQS instances. See the
/// module docs above for the protocol and fairness contract.
///
/// # Example
///
/// ```
/// use cqs_pool::ShardedQueuePool;
///
/// let pool: ShardedQueuePool<String> = ShardedQueuePool::with_shards(4);
/// pool.put("conn-a".to_string());
/// let conn = pool.take().wait().unwrap();
/// pool.put(conn);
/// ```
pub struct ShardedPool<E: Send + 'static, B: PoolBackend<E>> {
    /// The shards live behind an `Arc` so each shard's refusal hook can
    /// hold a `Weak` back-reference: a refusal can settle on the
    /// *cancelling* thread after the putting thread already scanned and
    /// returned (the resume delegated its element to the mid-flight
    /// canceller), making the canceller the only thread that can still run
    /// the no-idle-element scan.
    inner: Arc<PoolInner<E, B>>,
}

struct PoolInner<E: Send + 'static, B: PoolBackend<E>> {
    shards: Box<[BlockingPool<E, B>]>,
}

impl<E: Send + 'static, B: PoolBackend<E>> PoolInner<E, B> {
    fn len(&self) -> usize {
        self.shards.iter().map(BlockingPool::len).sum()
    }

    fn waiting_takers(&self) -> usize {
        self.shards.iter().map(BlockingPool::waiting_takers).sum()
    }

    /// Migrates stored elements from `home`'s store to starving sibling
    /// shards, one batched [`BlockingPool::put_many`] per recipient, until
    /// the store runs dry or no sibling is starving. Returns the number of
    /// elements migrated.
    fn rebalance_from(&self, home: usize) -> usize {
        let n = self.shards.len();
        let mut moved = 0;
        for d in 1..n {
            let victim = &self.shards[(home + d) % n];
            let starving = victim.waiting_takers();
            if starving == 0 {
                continue;
            }
            cqs_chaos::inject!("sharded.rebalance.window");
            // Reclaim a batch from our own store. Racing local takers may
            // drain it first — then the elements went to completed
            // operations instead, which is equally conservative.
            let batch: Vec<E> = (0..starving)
                .map_while(|_| self.shards[home].try_take_weak())
                .collect();
            if batch.is_empty() {
                break;
            }
            cqs_stats::bump!(shard_rebalances, batch.len());
            moved += batch.len();
            victim.put_many(batch);
        }
        moved
    }

    fn rebalance(&self) -> usize {
        (0..self.shards.len())
            .map(|home| self.rebalance_from(home))
            .sum()
    }

    /// The no-idle-element guarantee: while elements sit stored anywhere
    /// and takers are parked anywhere, migrate toward them — from *every*
    /// shard's store, until the system stops moving. The loop matters: a
    /// migration batch can itself be outrun by a cancelling recipient
    /// (whose refusal re-stores the elements at the recipient shard), so
    /// a single pass is not enough. An element and a taker can never
    /// coexist on the *same* shard (the signed size word is one or the
    /// other), so `rebalance` always makes progress while the condition
    /// holds; away from it this is a handful of loads.
    ///
    /// Runs from every put and, through each shard's refusal hook, from
    /// every settled refusal — the latter covers re-stores that land on a
    /// cancelling thread after the putter already scanned.
    fn settle(&self) {
        while self.len() > 0 && self.waiting_takers() > 0 && self.rebalance() > 0 {}
    }
}

impl<E: Send + 'static, B: PoolBackend<E> + Default> ShardedPool<E, B> {
    /// Creates an empty sharded pool with the default shard count: the
    /// machine's available parallelism, capped at [`MAX_DEFAULT_SHARDS`](crate::MAX_DEFAULT_SHARDS).
    pub fn new() -> Self {
        Self::with_shards(cqs_core::shard::default_shard_count(MAX_DEFAULT_SHARDS))
    }

    /// Creates an empty sharded pool with an explicit shard count.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn with_shards(shards: usize) -> Self {
        Self::build(shards, None)
    }

    /// Creates an empty sharded pool whose shard queues all use the given
    /// memory-reclamation backend instead of the process-wide
    /// [`cqs_core::default_reclaimer`]. Shard count follows
    /// [`new`](Self::new).
    pub fn with_reclaimer(reclaimer: cqs_core::ReclaimerKind) -> Self {
        Self::build(
            cqs_core::shard::default_shard_count(MAX_DEFAULT_SHARDS),
            Some(reclaimer),
        )
    }

    fn build(shards: usize, reclaimer: Option<cqs_core::ReclaimerKind>) -> Self {
        assert!(shards > 0, "a sharded pool needs at least one shard");
        // Divide the default freelist bound across the shards; each keeps
        // at least one slot, so the whole primitive pins at most
        // `max(DEFAULT_FREELIST_SLOTS, shards)` idle segments (the
        // single-queue envelope up to 4 shards, one per shard beyond).
        let slots = (cqs_core::CqsConfig::DEFAULT_FREELIST_SLOTS / shards).max(1);
        let inner = Arc::new_cyclic(|weak: &Weak<PoolInner<E, B>>| PoolInner {
            shards: (0..shards)
                .map(|_| {
                    // With siblings to strand a taker on, each shard
                    // reports settled refusals back so the wrapper can
                    // re-run the settle scan from the cancelling thread
                    // (the weak upgrade only fails when the whole primitive
                    // is already gone — nothing left to serve).
                    let on_refusal: Option<RefusalHook> = (shards > 1).then(|| {
                        let weak = Weak::clone(weak);
                        Box::new(move || {
                            if let Some(inner) = weak.upgrade() {
                                inner.settle();
                            }
                        }) as RefusalHook
                    });
                    BlockingPool::with_backend_config(
                        B::default(),
                        "sharded-pool.take",
                        slots,
                        on_refusal,
                        reclaimer,
                    )
                })
                .collect::<Vec<_>>()
                .into_boxed_slice(),
        });
        ShardedPool { inner }
    }
}

impl<E: Send + 'static, B: PoolBackend<E> + Default> Default for ShardedPool<E, B> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E: Send + 'static, B: PoolBackend<E>> ShardedPool<E, B> {
    /// The number of shards.
    pub fn shards(&self) -> usize {
        self.inner.shards.len()
    }

    /// The calling thread's home shard index.
    pub fn home(&self) -> usize {
        cqs_core::shard::home_shard(self.inner.shards.len())
    }

    /// A racy snapshot of the number of stored elements across all shards.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether no elements are currently stored on any shard.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A racy snapshot of the takers queued across all shards.
    pub fn waiting_takers(&self) -> usize {
        self.inner.waiting_takers()
    }

    /// Total live queue segments across all shards (diagnostics).
    pub fn live_segments(&self) -> usize {
        self.inner
            .shards
            .iter()
            .map(BlockingPool::live_segments)
            .sum()
    }

    /// Retrieves an element routed through the calling thread's home shard.
    pub fn take(&self) -> CqsFuture<E> {
        self.take_at(self.home())
    }

    /// Retrieves an element routed through shard `home % shards` — the
    /// deterministic core of [`take`](Self::take), also used by the
    /// model-checking programs to pin routing independently of TLS.
    pub fn take_at(&self, home: usize) -> CqsFuture<E> {
        let shards = &self.inner.shards;
        let n = shards.len();
        let home = home % n;
        if shards[home].is_closed() {
            return CqsFuture::cancelled();
        }
        if let Some(element) = shards[home].try_take_weak() {
            cqs_stats::bump!(shard_local_hits);
            return CqsFuture::immediate(element);
        }
        for d in 1..n {
            cqs_chaos::inject!("sharded.steal.window");
            if let Some(element) = shards[(home + d) % n].try_take_weak() {
                cqs_stats::bump!(shard_steals);
                return CqsFuture::immediate(element);
            }
        }
        // Global miss: park in the home shard's FIFO taker queue...
        let f = shards[home].take();
        if f.is_immediate() {
            return f;
        }
        // ...then re-scan the sibling stores: a put that stored its element
        // between our steal pass and our registration cannot have seen us
        // waiting; this re-scan is our side of that race (see module docs).
        // On a hit we abort the queued request; if the abort loses to an
        // in-flight grant we hold one element too many and return it.
        for d in 1..n {
            cqs_chaos::inject!("sharded.steal.window");
            if let Some(element) = shards[(home + d) % n].try_take_weak() {
                if f.cancel() {
                    cqs_stats::bump!(shard_steals);
                    return CqsFuture::immediate(element);
                }
                self.put_at((home + d) % n, element);
                return f;
            }
        }
        f
    }

    /// Blocking convenience: retrieves an element, waiting if necessary.
    ///
    /// # Errors
    ///
    /// Fails with [`Cancelled`] only if the pool is closed.
    pub fn take_blocking(&self) -> Result<E, Cancelled> {
        self.take().wait()
    }

    /// Returns `element` through the calling thread's home shard.
    pub fn put(&self, element: E) {
        self.put_at(self.home(), element);
    }

    /// Returns `element` through shard `home % shards` — the deterministic
    /// core of [`put`](Self::put).
    ///
    /// Hands it to the home shard's first waiting taker if there is one;
    /// otherwise stores it locally and immediately migrates stored
    /// elements to any starving sibling shards (see the module docs for
    /// why pool migration cannot be deferred).
    pub fn put_at(&self, home: usize, element: E) {
        let inner = &*self.inner;
        let n = inner.shards.len();
        let home = home % n;
        // Whether the element was stored or handed to a local taker is
        // decided by the put's own `fetch_add`, not by a
        // `waiting_takers()` snapshot taken beforehand: a taker the
        // snapshot counted can cancel concurrently (its `on_cancellation`
        // increments the size word first), turning the would-be handoff
        // into a store that a snapshot-guided early return would leave
        // unmigrated — a lost wakeup for a taker parked on a sibling.
        let stored = inner.shards[home].put_reporting(element);
        if n == 1 {
            // Single shard: the store serves its own FIFO queue directly.
            return;
        }
        if stored {
            inner.rebalance_from(home);
        }
        // On *both* paths: even a committed handoff can be voided by the
        // taker's cancellation refusing the in-flight resume, which
        // re-stores the element. When the refusal settles before this put
        // returns, this scan catches it; when the resume delegated its
        // element to a mid-flight canceller, the refusal settles on the
        // cancelling thread *after* we return, and that shard's refusal
        // hook re-runs the scan from there.
        inner.settle();
    }

    /// Returns a batch of elements through shard `home % shards`: waiting
    /// takers anywhere are served first (home shard, then ring order), one
    /// batched [`BlockingPool::put_many`] traversal per recipient shard,
    /// and the remainder is stored at home (followed by the same migration
    /// scan as [`put_at`](Self::put_at)).
    pub fn put_many_at(&self, home: usize, elements: impl IntoIterator<Item = E>) {
        let mut elements: Vec<E> = elements.into_iter().collect();
        if elements.is_empty() {
            return;
        }
        let inner = &*self.inner;
        let n = inner.shards.len();
        let home = home % n;
        for d in 0..n {
            if elements.is_empty() {
                break;
            }
            let idx = (home + d) % n;
            let shard = &inner.shards[idx];
            let waiters = shard.waiting_takers().min(elements.len());
            if waiters > 0 {
                if d > 0 {
                    cqs_chaos::inject!("sharded.rebalance.window");
                    cqs_stats::bump!(shard_rebalances, waiters);
                }
                let stored = shard.put_many_reporting(elements.drain(..waiters));
                if stored > 0 && d > 0 {
                    // Takers counted by the snapshot cancelled under us:
                    // part of the batch landed in this *foreign* shard's
                    // store. Sweep from it right away so the elements
                    // reach takers parked elsewhere instead of stranding.
                    inner.rebalance_from(idx);
                }
            }
        }
        // No early return above: every batched put ends with the home
        // migration scan and the settle check, even when the taker counts
        // it served against consumed the whole batch — those counts were
        // snapshots and may have over-promised.
        if !elements.is_empty() {
            inner.shards[home].put_many(elements);
        }
        inner.rebalance_from(home);
        inner.settle();
    }

    /// Returns a batch of elements through the calling thread's home shard;
    /// see [`put_many_at`](Self::put_many_at).
    pub fn put_many(&self, elements: impl IntoIterator<Item = E>) {
        self.put_many_at(self.home(), elements);
    }

    /// Runs a migration sweep from every shard's store toward starving
    /// shards. Normally unnecessary (puts migrate on their own); exposed
    /// for tests and operators reacting to a watchdog report.
    pub fn rebalance(&self) -> usize {
        self.inner.rebalance()
    }

    /// Closes the pool: every waiting taker on every shard is woken with
    /// [`Cancelled`] and subsequent takes fail fast. Stored elements stay,
    /// and [`put`](Self::put) keeps working for orderly teardown.
    pub fn close(&self) {
        for shard in self.inner.shards.iter() {
            shard.close();
        }
    }

    /// Whether [`close`](Self::close) was called.
    pub fn is_closed(&self) -> bool {
        self.inner.shards[0].is_closed()
    }

    /// Publishes per-shard depth and live-segment gauges to the watchdog
    /// (`shard_depth`, `live_segments`, keyed by each shard's primitive
    /// id). No-op without the `watch` feature.
    pub fn publish_gauges(&self) {
        for shard in self.inner.shards.iter() {
            cqs_watch::gauge!(
                shard.watch_id(),
                "shard_depth",
                shard.waiting_takers() as i64
            );
            cqs_watch::gauge!(
                shard.watch_id(),
                "live_segments",
                shard.live_segments() as i64
            );
            let _ = shard;
        }
    }
}

impl<E: Send + 'static, B: PoolBackend<E>> std::fmt::Debug for ShardedPool<E, B> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedPool")
            .field("shards", &self.inner.shards.len())
            .field("len", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn put_take_roundtrip_across_shards() {
        let pool: ShardedQueuePool<u64> = ShardedQueuePool::with_shards(3);
        assert!(pool.is_empty());
        for e in 0..6 {
            pool.put_at(e as usize, e);
        }
        assert_eq!(pool.len(), 6);
        let mut seen = HashSet::new();
        for i in 0..6 {
            let f = pool.take_at(i + 1); // route through a foreign shard
            assert!(f.is_immediate(), "take {i} must hit a store or steal");
            seen.insert(f.wait().unwrap());
        }
        assert_eq!(seen.len(), 6, "elements lost or duplicated");
        assert!(pool.is_empty());
    }

    #[test]
    fn steal_crosses_shards() {
        let pool: ShardedQueuePool<u64> = ShardedQueuePool::with_shards(2);
        pool.put_at(0, 7);
        let f = pool.take_at(1);
        assert!(f.is_immediate(), "steal pass must find shard 0's store");
        assert_eq!(f.wait(), Ok(7));
    }

    #[test]
    fn put_reaches_taker_parked_on_other_shard() {
        let pool: ShardedQueuePool<u64> = ShardedQueuePool::with_shards(2);
        let waiter = pool.take_at(1);
        assert!(!waiter.is_immediate(), "empty pool: taker must park");
        pool.put_at(0, 42);
        assert_eq!(waiter.wait(), Ok(42), "migration must reach the taker");
        assert!(pool.is_empty());
    }

    #[test]
    fn put_many_serves_takers_across_shards_then_stores() {
        let pool: ShardedQueuePool<u64> = ShardedQueuePool::with_shards(2);
        let w0 = pool.take_at(0);
        let w1 = pool.take_at(1);
        assert!(!w0.is_immediate() && !w1.is_immediate());
        pool.put_many_at(0, [1, 2, 3, 4]);
        let got: HashSet<u64> = [w0.wait().unwrap(), w1.wait().unwrap()].into();
        assert_eq!(got.len(), 2);
        assert_eq!(pool.len(), 2, "leftovers are stored");
    }

    #[test]
    fn takers_are_fifo_within_a_shard() {
        let pool: ShardedQueuePool<u64> = ShardedQueuePool::with_shards(2);
        let f1 = pool.take_at(1);
        let f2 = pool.take_at(1);
        pool.put_at(1, 10);
        pool.put_at(1, 11);
        assert_eq!(f1.wait(), Ok(10), "per-shard FIFO violated");
        assert_eq!(f2.wait(), Ok(11));
    }

    #[test]
    fn cancelled_taker_is_skipped() {
        let pool: ShardedStackPool<u64> = ShardedStackPool::with_shards(2);
        let f1 = pool.take_at(0);
        let f2 = pool.take_at(0);
        assert!(f1.cancel());
        pool.put_at(1, 9);
        assert_eq!(f2.wait(), Ok(9));
    }

    #[test]
    fn close_wakes_takers_on_all_shards_and_keeps_elements() {
        let pool: ShardedQueuePool<u64> = ShardedQueuePool::with_shards(3);
        let waiters: Vec<_> = (0..3).map(|i| pool.take_at(i)).collect();
        pool.close();
        assert!(pool.is_closed());
        for w in waiters {
            assert!(w.wait().is_err());
        }
        assert!(
            pool.take_at(0).wait().is_err(),
            "take after close fails fast"
        );
        pool.put_at(0, 5);
        assert_eq!(pool.len(), 1, "elements survive close");
    }

    /// Elements are conserved under threads hammering every path: local
    /// hits, steals, parks, cancellations, migrations, batched puts.
    #[test]
    fn elements_conserved_under_sharded_storm() {
        const THREADS: usize = 8;
        const ELEMENTS: u64 = 3;
        const OPS: usize = 800;
        let pool: Arc<ShardedQueuePool<u64>> = Arc::new(ShardedQueuePool::with_shards(4));
        for e in 0..ELEMENTS {
            pool.put_at(e as usize, e);
        }
        let held = Arc::new(AtomicUsize::new(0));
        let mut joins = Vec::new();
        for t in 0..THREADS {
            let pool = Arc::clone(&pool);
            let held = Arc::clone(&held);
            joins.push(std::thread::spawn(move || {
                for i in 0..OPS {
                    let f = pool.take_at(t + i);
                    if (i + t) % 7 == 0 && f.cancel() {
                        continue;
                    }
                    let e = f.wait().unwrap();
                    let now = held.fetch_add(1, Ordering::SeqCst) + 1;
                    assert!(now <= ELEMENTS as usize, "more elements in use than exist");
                    held.fetch_sub(1, Ordering::SeqCst);
                    if i % 13 == 0 {
                        pool.put_many_at(t + i, [e]);
                    } else {
                        pool.put_at(t + i + 1, e); // return via a foreign shard
                    }
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        let mut back = HashSet::new();
        for i in 0..ELEMENTS {
            back.insert(pool.take_at(i as usize).wait().unwrap());
        }
        assert_eq!(back.len(), ELEMENTS as usize, "elements lost or duplicated");
        assert!(pool.is_empty());
        assert_eq!(pool.waiting_takers(), 0);
    }
}
