//! Memory-reclamation behaviour: values stored in the queue are dropped
//! exactly once, pools and queues do not leak elements under churn, and
//! dropping primitives with live waiters breaks all reference cycles.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use cqs::reclaim::{pin, AtomicArc, Collector};
use cqs::{Cqs, CqsConfig, QueuePool, Semaphore, SimpleCancellation, StackPool};

/// A value whose drops are counted.
#[derive(Debug)]
struct Tracked {
    drops: Arc<AtomicUsize>,
}

impl Tracked {
    fn new(drops: &Arc<AtomicUsize>) -> Self {
        Tracked {
            drops: Arc::clone(drops),
        }
    }
}

impl Drop for Tracked {
    fn drop(&mut self) {
        self.drops.fetch_add(1, Ordering::SeqCst);
    }
}

#[test]
fn values_passed_through_cqs_drop_exactly_once() {
    let drops = Arc::new(AtomicUsize::new(0));
    const N: usize = 100;
    {
        let cqs: Cqs<Tracked> = Cqs::new(CqsConfig::new().segment_size(4), SimpleCancellation);
        // Half delivered to waiters, half taken by elimination.
        let futures: Vec<_> = (0..N / 2).map(|_| cqs.suspend().expect_future()).collect();
        for _ in 0..N {
            cqs.resume(Tracked::new(&drops)).unwrap();
        }
        for f in futures {
            drop(f.wait().unwrap());
        }
        for _ in 0..N / 2 {
            drop(cqs.suspend().expect_future().wait().unwrap());
        }
    }
    assert_eq!(drops.load(Ordering::SeqCst), N);
}

#[test]
fn values_parked_in_cells_drop_with_the_queue() {
    let drops = Arc::new(AtomicUsize::new(0));
    {
        let cqs: Cqs<Tracked> = Cqs::new(CqsConfig::new().segment_size(4), SimpleCancellation);
        // Park values in cells with no suspender ever coming.
        for _ in 0..10 {
            cqs.resume(Tracked::new(&drops)).unwrap();
        }
        assert_eq!(drops.load(Ordering::SeqCst), 0, "values still parked");
    }
    // Link references displaced during teardown are epoch-deferred; drain
    // them to make the drops observable.
    cqs::reclaim::flush();
    assert_eq!(
        drops.load(Ordering::SeqCst),
        10,
        "parked values must drop with the queue"
    );
}

#[test]
fn pool_elements_drop_exactly_once() {
    let drops = Arc::new(AtomicUsize::new(0));
    {
        let pool: QueuePool<Tracked> = QueuePool::new();
        for _ in 0..20 {
            pool.put(Tracked::new(&drops));
        }
        for _ in 0..10 {
            drop(pool.take().wait().unwrap());
        }
        // 10 taken and dropped; 10 still stored.
        assert_eq!(drops.load(Ordering::SeqCst), 10);
    }
    cqs::reclaim::flush();
    assert_eq!(drops.load(Ordering::SeqCst), 20);
}

#[test]
fn stack_pool_elements_drop_exactly_once() {
    let drops = Arc::new(AtomicUsize::new(0));
    {
        let pool: StackPool<Tracked> = StackPool::new();
        for _ in 0..20 {
            pool.put(Tracked::new(&drops));
        }
        for _ in 0..7 {
            drop(pool.take().wait().unwrap());
        }
        assert_eq!(drops.load(Ordering::SeqCst), 7);
    }
    cqs::reclaim::flush();
    assert_eq!(drops.load(Ordering::SeqCst), 20);
}

/// Dropping a CQS with pending waiters must break the
/// `segment -> request -> handler -> segment` cycles: the requests
/// themselves become the only owners and die with their futures.
#[test]
fn dropping_queue_with_waiters_releases_requests() {
    let cqs: Cqs<u64> = Cqs::new(CqsConfig::new().segment_size(2), SimpleCancellation);
    let futures: Vec<_> = (0..16).map(|_| cqs.suspend().expect_future()).collect();
    drop(cqs);
    for f in futures {
        // Cancelling against the dead queue is safe and the futures free
        // their segments when dropped here.
        let _ = f.cancel();
    }
}

/// Segment churn through a semaphore: millions of cells worth of segments
/// are created and released without exhausting memory (smoke test: RSS is
/// not measured, but the epoch collector must keep up without panicking).
#[test]
fn segment_churn_smoke() {
    let s = Arc::new(Semaphore::new(1));
    s.acquire().wait().unwrap();
    for _ in 0..50 {
        let futures: Vec<_> = (0..1_000).map(|_| s.acquire()).collect();
        for f in &futures {
            assert!(f.cancel());
        }
    }
    s.release();
    assert_eq!(s.available_permits(), 1);
}

/// The raw AtomicArc cell releases every displaced reference (already unit
/// tested in cqs-reclaim; this exercises it through the public facade).
#[test]
fn atomic_arc_roundtrip_via_facade() {
    let collector = Collector::new();
    let drops = Arc::new(AtomicUsize::new(0));
    {
        let handle = collector.register();
        let cell = AtomicArc::new(Some(Arc::new(Tracked::new(&drops))));
        for _ in 0..100 {
            let guard = handle.pin();
            cell.store(Some(Arc::new(Tracked::new(&drops))), &guard);
        }
        drop(cell);
    }
    collector.flush();
    assert_eq!(drops.load(Ordering::SeqCst), 101);
}

/// The default `pin()` guard works through the facade as well.
#[test]
fn default_pin_via_facade() {
    let guard = pin();
    guard.defer(|| {});
}
