//! Property-based tests: random operation sequences executed against both
//! the real primitives and simple sequential reference models.
//!
//! The cell-array reference model lives in `cqs_check::models` — the same
//! model the offline model checker and the chaos linearizability harness
//! check against (see `crates/check`).

use std::collections::VecDeque;

use proptest::prelude::*;

use cqs::{Cqs, CqsConfig, CqsFuture, FutureState, QueuePool, Semaphore, SimpleCancellation};
use cqs_check::models::CellArrayModel;

// ---------------------------------------------------------------------
// CQS (simple cancellation mode) vs a sequential reference model
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum CqsOp {
    Suspend,
    Resume(u64),
    /// Cancel the pending future with this (wrapped) index.
    Cancel(usize),
}

fn cqs_ops() -> impl Strategy<Value = Vec<CqsOp>> {
    prop::collection::vec(
        prop_oneof![
            3 => Just(CqsOp::Suspend),
            3 => (0u64..1000).prop_map(CqsOp::Resume),
            1 => (0usize..64).prop_map(CqsOp::Cancel),
        ],
        0..120,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The real CQS agrees with the model on every operation outcome.
    #[test]
    fn cqs_simple_mode_matches_model(ops in cqs_ops()) {
        let cqs: Cqs<u64> = Cqs::new(
            CqsConfig::new().segment_size(2),
            SimpleCancellation,
        );
        let mut model = CellArrayModel::default();
        // Pending real futures by cell index.
        let mut pending: Vec<(usize, CqsFuture<u64>)> = Vec::new();

        for op in ops {
            match op {
                CqsOp::Suspend => {
                    let cell = model.suspend_idx;
                    let expected = model.suspend();
                    let mut f = cqs.suspend().expect_future();
                    match expected {
                        Some(v) => {
                            prop_assert!(f.is_immediate());
                            prop_assert_eq!(f.try_get(), FutureState::Ready(v));
                        }
                        None => {
                            prop_assert!(!f.is_immediate());
                            pending.push((cell, f));
                        }
                    }
                }
                CqsOp::Resume(v) => {
                    let expected = model.resume(v);
                    let real = cqs.resume(v);
                    match expected {
                        Ok(Some(cell)) => {
                            prop_assert!(real.is_ok());
                            // The completed future must be observable now.
                            let (_, mut f) = pending
                                .iter()
                                .position(|(c, _)| *c == cell)
                                .map(|i| pending.remove(i))
                                .expect("completed waiter must be tracked");
                            prop_assert_eq!(f.try_get(), FutureState::Ready(v));
                        }
                        Ok(None) => prop_assert!(real.is_ok()),
                        Err(()) => prop_assert_eq!(real, Err(v)),
                    }
                }
                CqsOp::Cancel(k) => {
                    if pending.is_empty() {
                        continue;
                    }
                    let (cell, f) = pending.remove(k % pending.len());
                    prop_assert!(f.cancel());
                    model.cancel(cell);
                }
            }
        }

        // Whatever remains is still pending.
        for (_, mut f) in pending {
            prop_assert_eq!(f.try_get(), FutureState::Pending);
        }
    }
}

// ---------------------------------------------------------------------
// Semaphore vs a FIFO permit model
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum SemOp {
    Acquire,
    Release,
    Cancel(usize),
}

fn sem_ops() -> impl Strategy<Value = (usize, Vec<SemOp>)> {
    (1usize..4).prop_flat_map(|permits| {
        (
            Just(permits),
            prop::collection::vec(
                prop_oneof![
                    3 => Just(SemOp::Acquire),
                    3 => Just(SemOp::Release),
                    1 => (0usize..32).prop_map(SemOp::Cancel),
                ],
                0..100,
            ),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Single-threaded semaphore behaviour matches a FIFO reference model:
    /// immediate acquisitions, waiter order and cancellation bookkeeping.
    #[test]
    fn semaphore_matches_fifo_model((permits, ops) in sem_ops()) {
        let semaphore = Semaphore::new(permits);
        // Model state.
        let mut available = permits;
        let mut held = 0usize;
        let mut model_waiters: VecDeque<usize> = VecDeque::new(); // ids
        let mut next_id = 0usize;
        // Real pending futures by id.
        let mut real_waiters: Vec<(usize, CqsFuture<()>)> = Vec::new();

        for op in ops {
            match op {
                SemOp::Acquire => {
                    let mut f = semaphore.acquire();
                    if available > 0 {
                        available -= 1;
                        held += 1;
                        prop_assert!(f.is_immediate());
                        prop_assert_eq!(f.try_get(), FutureState::Ready(()));
                    } else {
                        prop_assert!(!f.is_immediate());
                        model_waiters.push_back(next_id);
                        real_waiters.push((next_id, f));
                        next_id += 1;
                    }
                }
                SemOp::Release => {
                    if held == 0 {
                        continue; // never release what we do not hold
                    }
                    held -= 1;
                    semaphore.release();
                    if let Some(id) = model_waiters.pop_front() {
                        // That waiter now holds a permit.
                        held += 1;
                        let (_, mut f) = real_waiters
                            .iter()
                            .position(|(i, _)| *i == id)
                            .map(|i| real_waiters.remove(i))
                            .expect("model waiter must exist");
                        prop_assert_eq!(f.try_get(), FutureState::Ready(()));
                    } else {
                        available += 1;
                    }
                }
                SemOp::Cancel(k) => {
                    if real_waiters.is_empty() {
                        continue;
                    }
                    let (id, f) = real_waiters.remove(k % real_waiters.len());
                    prop_assert!(f.cancel());
                    model_waiters.retain(|w| *w != id);
                }
            }
        }

        // Remaining waiters are still pending; available permits agree.
        for (_, mut f) in real_waiters {
            prop_assert_eq!(f.try_get(), FutureState::Pending);
        }
        prop_assert_eq!(semaphore.available_permits(), available);
    }
}

// ---------------------------------------------------------------------
// Queue pool vs a FIFO multiset model
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum PoolOp {
    Put(u64),
    Take,
    Cancel(usize),
}

fn pool_ops() -> impl Strategy<Value = Vec<PoolOp>> {
    prop::collection::vec(
        prop_oneof![
            3 => (0u64..1_000).prop_map(PoolOp::Put),
            3 => Just(PoolOp::Take),
            1 => (0usize..32).prop_map(PoolOp::Cancel),
        ],
        0..100,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Single-threaded pool behaviour: FIFO element order, FIFO waiting
    /// takers, cancellation leaves the pool consistent.
    #[test]
    fn queue_pool_matches_model(ops in pool_ops()) {
        let pool: QueuePool<u64> = QueuePool::new();
        let mut stored: VecDeque<u64> = VecDeque::new();
        let mut model_waiters: VecDeque<usize> = VecDeque::new();
        let mut next_id = 0usize;
        let mut real_waiters: Vec<(usize, CqsFuture<u64>)> = Vec::new();

        for op in ops {
            match op {
                PoolOp::Put(v) => {
                    pool.put(v);
                    if let Some(id) = model_waiters.pop_front() {
                        // The first waiting taker receives the element now.
                        let (_, mut f) = real_waiters
                            .iter()
                            .position(|(i, _)| *i == id)
                            .map(|i| real_waiters.remove(i))
                            .expect("resumed taker must be tracked");
                        prop_assert_eq!(f.try_get(), FutureState::Ready(v));
                    } else {
                        stored.push_back(v);
                    }
                }
                PoolOp::Take => {
                    let mut f = pool.take();
                    if let Some(v) = stored.pop_front() {
                        prop_assert_eq!(f.try_get(), FutureState::Ready(v));
                    } else {
                        prop_assert!(!f.is_immediate());
                        model_waiters.push_back(next_id);
                        real_waiters.push((next_id, f));
                        next_id += 1;
                    }
                }
                PoolOp::Cancel(k) => {
                    if real_waiters.is_empty() {
                        continue;
                    }
                    let (id, f) = real_waiters.remove(k % real_waiters.len());
                    prop_assert!(f.cancel());
                    model_waiters.retain(|w| *w != id);
                }
            }
        }

        for (_, mut f) in real_waiters {
            prop_assert_eq!(f.try_get(), FutureState::Pending);
        }
        // Every stored element is retrievable in FIFO order.
        for v in stored {
            prop_assert_eq!(pool.take().wait(), Ok(v));
        }
    }
}
