//! Property-based tests for the batched resume paths: random interleavings
//! of `suspend`, `resume_n` and `cancel` executed against the same
//! sequential reference model as `proptest_invariants.rs`, checking that a
//! batch of n values behaves exactly like n sequential resumes — FIFO
//! delivery, exactly-once completion, and failed values reported in claim
//! order — and that a final `resume_all` covers precisely the live
//! waiters.

use proptest::prelude::*;

use cqs::{Cqs, CqsConfig, CqsFuture, FutureState, SimpleCancellation};
use cqs_check::models::CellArrayModel;

#[derive(Debug, Clone)]
enum Op {
    Suspend,
    /// Resume a batch of this many fresh, distinct values.
    ResumeN(usize),
    /// Cancel the pending future with this (wrapped) index.
    Cancel(usize),
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            4 => Just(Op::Suspend),
            3 => (1usize..7).prop_map(Op::ResumeN),
            2 => (0usize..64).prop_map(Op::Cancel),
        ],
        0..100,
    )
}

// The sequential model is `cqs_check::models::CellArrayModel`, shared with
// `proptest_invariants.rs` and the offline model checker: an infinite cell
// array walked by two counters, where `resume_n(values)` is *defined* as n
// sequential resumes — the property under test is that the real
// single-traversal batch is indistinguishable from that.

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// A `resume_n` batch is observationally equal to n sequential
    /// resumes: same completions (FIFO, exactly-once, k-th value to the
    /// k-th claimed cell), same parked values, and the same failed values
    /// in the same order.
    #[test]
    fn resume_n_matches_n_sequential_resumes(ops in ops()) {
        let cqs: Cqs<u64> = Cqs::new(
            CqsConfig::new().segment_size(2),
            SimpleCancellation,
        );
        let mut model = CellArrayModel::default();
        let mut pending: Vec<(usize, CqsFuture<u64>)> = Vec::new();
        let mut next_value = 0u64;

        for op in ops {
            match op {
                Op::Suspend => {
                    let cell = model.suspend_idx;
                    let expected = model.suspend();
                    let mut f = cqs.suspend().expect_future();
                    match expected {
                        Some(v) => {
                            prop_assert!(f.is_immediate());
                            prop_assert_eq!(f.try_get(), FutureState::Ready(v));
                        }
                        None => {
                            prop_assert!(!f.is_immediate());
                            pending.push((cell, f));
                        }
                    }
                }
                Op::ResumeN(n) => {
                    let values: Vec<u64> =
                        (next_value..next_value + n as u64).collect();
                    next_value += n as u64;
                    // Run the model n times, recording what each value
                    // should do.
                    let mut expected_failed = Vec::new();
                    let mut expected_completions = Vec::new();
                    for &v in &values {
                        match model.resume(v) {
                            Ok(Some(cell)) => expected_completions.push((cell, v)),
                            Ok(None) => {}
                            Err(()) => expected_failed.push(v),
                        }
                    }
                    let failed = cqs.resume_n(values, n);
                    prop_assert_eq!(failed, expected_failed);
                    for (cell, v) in expected_completions {
                        let (_, mut f) = pending
                            .iter()
                            .position(|(c, _)| *c == cell)
                            .map(|i| pending.remove(i))
                            .expect("completed waiter must be tracked");
                        prop_assert_eq!(f.try_get(), FutureState::Ready(v));
                    }
                }
                Op::Cancel(k) => {
                    if pending.is_empty() {
                        continue;
                    }
                    let (cell, f) = pending.remove(k % pending.len());
                    prop_assert!(f.cancel());
                    model.cancel(cell);
                }
            }
        }

        // Anything not completed or cancelled is still pending — a batch
        // must never wake a waiter it did not deliver a value to.
        for (_, f) in &mut pending {
            prop_assert_eq!(f.try_get(), FutureState::Pending);
        }

        // Finally, a broadcast covers exactly the live waiters: the cells
        // in [resume_idx, suspend_idx) still holding a Waiter.
        let live = model.live_waiters();
        let delivered = cqs.resume_all(u64::MAX);
        prop_assert_eq!(delivered, live);
        for (_, mut f) in pending {
            prop_assert_eq!(f.try_get(), FutureState::Ready(u64::MAX));
        }
    }
}
