//! `CqsFuture` as a standard Rust `Future`: primitives awaited from async
//! code with a hand-rolled `block_on` (no external runtime needed).

use std::pin::Pin;
use std::sync::Arc;
use std::task::{Context, Poll, Wake};
use std::thread::Thread;

use cqs::{CountDownLatch, QueuePool, RawMutex, Semaphore};

struct ThreadWaker(Thread);

impl Wake for ThreadWaker {
    fn wake(self: Arc<Self>) {
        self.0.unpark();
    }
}

fn block_on<F: std::future::Future>(mut future: F) -> F::Output {
    let waker = Arc::new(ThreadWaker(std::thread::current())).into();
    let mut cx = Context::from_waker(&waker);
    // SAFETY: `future` is stack-pinned and never moved afterwards.
    let mut future = unsafe { Pin::new_unchecked(&mut future) };
    loop {
        match future.as_mut().poll(&mut cx) {
            Poll::Ready(v) => return v,
            Poll::Pending => std::thread::park(),
        }
    }
}

#[test]
fn await_semaphore_acquire() {
    let s = Arc::new(Semaphore::new(1));
    s.acquire().wait().unwrap();
    let s2 = Arc::clone(&s);
    let releaser = std::thread::spawn(move || {
        std::thread::sleep(std::time::Duration::from_millis(20));
        s2.release();
    });
    block_on(async {
        s.acquire().await.unwrap();
    });
    releaser.join().unwrap();
    s.release();
}

#[test]
fn await_mutex_lock() {
    let m = Arc::new(RawMutex::new());
    m.lock().wait().unwrap();
    let m2 = Arc::clone(&m);
    let unlocker = std::thread::spawn(move || {
        std::thread::sleep(std::time::Duration::from_millis(20));
        m2.unlock();
    });
    block_on(async {
        m.lock().await.unwrap();
    });
    unlocker.join().unwrap();
    m.unlock();
}

#[test]
fn await_pool_take() {
    let pool: Arc<QueuePool<u64>> = Arc::new(QueuePool::new());
    let p2 = Arc::clone(&pool);
    let putter = std::thread::spawn(move || {
        std::thread::sleep(std::time::Duration::from_millis(20));
        p2.put(5);
    });
    let got = block_on(async { pool.take().await.unwrap() });
    assert_eq!(got, 5);
    putter.join().unwrap();
}

#[test]
fn await_latch() {
    let latch = Arc::new(CountDownLatch::new(2));
    let l2 = Arc::clone(&latch);
    let counter = std::thread::spawn(move || {
        l2.count_down();
        l2.count_down();
    });
    block_on(async {
        latch.await_ready().await.unwrap();
    });
    counter.join().unwrap();
}

#[test]
fn await_already_ready_future() {
    let s = Semaphore::new(1);
    block_on(async {
        s.acquire().await.unwrap();
    });
    s.release();
}

#[test]
fn awaited_future_can_be_cancelled_first() {
    let s = Semaphore::new(1);
    s.acquire().wait().unwrap();
    let f = s.acquire();
    assert!(f.cancel());
    let result = block_on(f);
    assert!(result.is_err());
}

/// Chained awaits: a small async "program" over several primitives.
#[test]
fn async_pipeline() {
    let pool: Arc<QueuePool<u64>> = Arc::new(QueuePool::new());
    let sem = Arc::new(Semaphore::new(1));
    let done = Arc::new(CountDownLatch::new(1));

    let p2 = Arc::clone(&pool);
    let d2 = Arc::clone(&done);
    let producer = std::thread::spawn(move || {
        for v in 0..10 {
            p2.put(v);
        }
        d2.count_down();
    });

    let total = block_on(async {
        done.await_ready().await.unwrap();
        let mut total = 0u64;
        for _ in 0..10 {
            sem.acquire().await.unwrap();
            total += pool.take().await.unwrap();
            sem.release();
        }
        total
    });
    assert_eq!(total, 45);
    producer.join().unwrap();
}
