//! `CqsFuture` as a standard Rust `Future`: primitives awaited from async
//! code with a hand-rolled `block_on` (no external runtime needed).

use std::pin::Pin;
use std::sync::Arc;
use std::task::{Context, Poll, Wake};
use std::thread::Thread;

use std::future::Future;
use std::sync::atomic::{AtomicU64, Ordering};

use cqs::exec::{CoroStep, CoroWaker, Coroutine, Executor};
use cqs::{Channel, CountDownLatch, QueuePool, RawMutex, Receive, Semaphore, SendFuture};

struct ThreadWaker(Thread);

impl Wake for ThreadWaker {
    fn wake(self: Arc<Self>) {
        self.0.unpark();
    }
}

fn block_on<F: std::future::Future>(mut future: F) -> F::Output {
    let waker = Arc::new(ThreadWaker(std::thread::current())).into();
    let mut cx = Context::from_waker(&waker);
    // SAFETY: `future` is stack-pinned and never moved afterwards.
    let mut future = unsafe { Pin::new_unchecked(&mut future) };
    loop {
        match future.as_mut().poll(&mut cx) {
            Poll::Ready(v) => return v,
            Poll::Pending => std::thread::park(),
        }
    }
}

#[test]
fn await_semaphore_acquire() {
    let s = Arc::new(Semaphore::new(1));
    s.acquire().wait().unwrap();
    let s2 = Arc::clone(&s);
    let releaser = std::thread::spawn(move || {
        std::thread::sleep(std::time::Duration::from_millis(20));
        s2.release();
    });
    block_on(async {
        s.acquire().await.unwrap();
    });
    releaser.join().unwrap();
    s.release();
}

#[test]
fn await_mutex_lock() {
    let m = Arc::new(RawMutex::new());
    m.lock().wait().unwrap();
    let m2 = Arc::clone(&m);
    let unlocker = std::thread::spawn(move || {
        std::thread::sleep(std::time::Duration::from_millis(20));
        m2.unlock();
    });
    block_on(async {
        m.lock().await.unwrap();
    });
    unlocker.join().unwrap();
    m.unlock();
}

#[test]
fn await_pool_take() {
    let pool: Arc<QueuePool<u64>> = Arc::new(QueuePool::new());
    let p2 = Arc::clone(&pool);
    let putter = std::thread::spawn(move || {
        std::thread::sleep(std::time::Duration::from_millis(20));
        p2.put(5);
    });
    let got = block_on(async { pool.take().await.unwrap() });
    assert_eq!(got, 5);
    putter.join().unwrap();
}

#[test]
fn await_latch() {
    let latch = Arc::new(CountDownLatch::new(2));
    let l2 = Arc::clone(&latch);
    let counter = std::thread::spawn(move || {
        l2.count_down();
        l2.count_down();
    });
    block_on(async {
        latch.await_ready().await.unwrap();
    });
    counter.join().unwrap();
}

#[test]
fn await_already_ready_future() {
    let s = Semaphore::new(1);
    block_on(async {
        s.acquire().await.unwrap();
    });
    s.release();
}

#[test]
fn awaited_future_can_be_cancelled_first() {
    let s = Semaphore::new(1);
    s.acquire().wait().unwrap();
    let f = s.acquire();
    assert!(f.cancel());
    let result = block_on(f);
    assert!(result.is_err());
}

/// Bridges the executor's [`CoroWaker`] into a `std::task::Waker`, so
/// coroutines can drive `std::future::Future`s directly.
struct CoroStdWaker(CoroWaker);

impl Wake for CoroStdWaker {
    fn wake(self: Arc<Self>) {
        self.0.wake();
    }
}

/// Drives the legacy channel's `SendFuture` through its `Future` impl.
struct ChannelSender {
    ch: &'static Channel<u64>,
    next: u64,
    end: u64,
    pending: Option<SendFuture<u64>>,
}

impl Coroutine for ChannelSender {
    fn step(&mut self, waker: &CoroWaker) -> CoroStep {
        let std_waker = Arc::new(CoroStdWaker(waker.clone())).into();
        let mut cx = Context::from_waker(&std_waker);
        loop {
            let mut f = match self.pending.take() {
                Some(f) => f,
                None => {
                    if self.next == self.end {
                        return CoroStep::Done;
                    }
                    let v = self.next;
                    self.next += 1;
                    self.ch.send(v)
                }
            };
            match Pin::new(&mut f).poll(&mut cx) {
                Poll::Ready(Ok(())) => {}
                Poll::Ready(Err(e)) => panic!("send rejected: {:?}", e.0),
                Poll::Pending => {
                    self.pending = Some(f);
                    return CoroStep::Pending;
                }
            }
        }
    }
}

/// Drives the legacy channel's `Receive` through its `Future` impl — the
/// await path whose delivery hook must release the capacity permit.
struct ChannelReceiver {
    ch: &'static Channel<u64>,
    left: u64,
    sum: Arc<AtomicU64>,
    pending: Option<Receive<'static, u64>>,
}

impl Coroutine for ChannelReceiver {
    fn step(&mut self, waker: &CoroWaker) -> CoroStep {
        let std_waker = Arc::new(CoroStdWaker(waker.clone())).into();
        let mut cx = Context::from_waker(&std_waker);
        loop {
            if self.left == 0 {
                return CoroStep::Done;
            }
            let mut f = match self.pending.take() {
                Some(f) => f,
                None => self.ch.receive(),
            };
            match Pin::new(&mut f).poll(&mut cx) {
                Poll::Ready(Ok(v)) => {
                    self.sum.fetch_add(v, Ordering::SeqCst);
                    self.left -= 1;
                }
                Poll::Ready(Err(e)) => panic!("receive cancelled: {e:?}"),
                Poll::Pending => {
                    self.pending = Some(f);
                    return CoroStep::Pending;
                }
            }
        }
    }
}

/// Round-trips 50 elements through a capacity-2 legacy channel on the
/// coroutine executor, with both sides suspending through their
/// `std::future::Future` impls, then proves the await path leaked no
/// capacity permit: exactly `CAPACITY` immediate sends fit afterwards.
#[test]
fn executor_channel_round_trip_releases_every_permit() {
    const CAPACITY: usize = 2;
    const SENDERS: u64 = 2;
    const PER_SENDER: u64 = 25;
    let ch: &'static Channel<u64> = Box::leak(Box::new(Channel::new(CAPACITY)));
    let executor = Executor::new(2);
    let sum = Arc::new(AtomicU64::new(0));
    for t in 0..SENDERS {
        executor.spawn(ChannelSender {
            ch,
            next: t * PER_SENDER + 1,
            end: (t + 1) * PER_SENDER + 1,
            pending: None,
        });
    }
    for _ in 0..2 {
        executor.spawn(ChannelReceiver {
            ch,
            left: SENDERS * PER_SENDER / 2,
            sum: Arc::clone(&sum),
            pending: None,
        });
    }
    executor.wait_idle();
    let total = SENDERS * PER_SENDER;
    assert_eq!(sum.load(Ordering::SeqCst), total * (total + 1) / 2);
    // Exactly CAPACITY permits are free: no leak, no over-release.
    let refill: Vec<_> = (0..CAPACITY as u64).map(|v| ch.send(v)).collect();
    for f in &refill {
        assert!(f.is_immediate(), "await path leaked a capacity permit");
    }
    let probe = ch.send(99);
    assert!(!probe.is_immediate(), "await path over-released a permit");
    for v in 0..CAPACITY as u64 {
        assert_eq!(ch.receive().wait(), Ok(v));
    }
    assert!(probe.wait().is_ok());
    assert_eq!(ch.receive().wait(), Ok(99));
}

/// Chained awaits: a small async "program" over several primitives.
#[test]
fn async_pipeline() {
    let pool: Arc<QueuePool<u64>> = Arc::new(QueuePool::new());
    let sem = Arc::new(Semaphore::new(1));
    let done = Arc::new(CountDownLatch::new(1));

    let p2 = Arc::clone(&pool);
    let d2 = Arc::clone(&done);
    let producer = std::thread::spawn(move || {
        for v in 0..10 {
            p2.put(v);
        }
        d2.count_down();
    });

    let total = block_on(async {
        done.await_ready().await.unwrap();
        let mut total = 0u64;
        for _ in 0..10 {
            sem.acquire().await.unwrap();
            total += pool.take().await.unwrap();
            sem.release();
        }
        total
    });
    assert_eq!(total, 45);
    producer.join().unwrap();
}
