//! Cancellation semantics across all primitives — the paper's central
//! feature. Covers simple/smart modes, refusal, timeout-driven aborts and
//! concurrent cancellation storms.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use cqs::{CountDownLatch, Mutex, QueuePool, RawMutex, Semaphore, StackPool};

/// Cancelling a queued lock request leaves the mutex fully functional.
#[test]
fn mutex_timeout_storm() {
    let mutex = Arc::new(Mutex::new(0u64));
    let guard = mutex.lock().unwrap();
    let timeouts = Arc::new(AtomicUsize::new(0));
    let handles: Vec<_> = (0..6)
        .map(|_| {
            let mutex = Arc::clone(&mutex);
            let timeouts = Arc::clone(&timeouts);
            std::thread::spawn(move || {
                for _ in 0..20 {
                    if mutex.lock_timeout(Duration::from_millis(1)).is_err() {
                        timeouts.fetch_add(1, Ordering::SeqCst);
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(timeouts.load(Ordering::SeqCst), 120);
    drop(guard);
    // The mutex still works and is free.
    *mutex.lock().unwrap() += 1;
    assert_eq!(*mutex.lock().unwrap(), 1);
}

/// Semaphore permits are conserved across any cancel/release interleaving.
#[test]
fn semaphore_permit_conservation_race() {
    const ROUNDS: usize = 300;
    for _ in 0..ROUNDS {
        let s = Arc::new(Semaphore::new(1));
        s.acquire().wait().unwrap();
        let waiter = s.acquire();

        let s2 = Arc::clone(&s);
        let releaser = std::thread::spawn(move || s2.release());
        let cancelled = waiter.cancel();
        releaser.join().unwrap();

        if !cancelled {
            // The waiter won the permit; hand it back.
            waiter.wait().unwrap();
            s.release();
        }
        assert_eq!(s.available_permits(), 1, "permit lost or duplicated");
    }
}

/// Cancelling *all* waiters then releasing does not wake anybody and does
/// not lose the permit.
#[test]
fn semaphore_cancel_all_waiters() {
    let s = Arc::new(Semaphore::new(1));
    s.acquire().wait().unwrap();
    let futures: Vec<_> = (0..16).map(|_| s.acquire()).collect();
    for f in &futures {
        assert!(f.cancel());
    }
    s.release();
    assert_eq!(s.available_permits(), 1);
    // A fresh acquire succeeds immediately.
    assert!(s.acquire().is_immediate());
}

/// Latch: cancellations racing the final count_down never lose the opening.
#[test]
fn latch_cancel_vs_open_race() {
    for _ in 0..200 {
        let latch = Arc::new(CountDownLatch::new(1));
        let f1 = latch.await_ready();
        let f2 = latch.await_ready();
        let l2 = Arc::clone(&latch);
        let opener = std::thread::spawn(move || l2.count_down());
        let c1 = f1.cancel();
        opener.join().unwrap();
        // f2 must always complete; f1 either cancelled or completed.
        assert_eq!(f2.wait(), Ok(()));
        if !c1 {
            assert_eq!(f1.wait(), Ok(()));
        }
    }
}

/// Pool elements survive cancellation storms (smart-cancel REFUSE path
/// exercises `complete_refused_resume` returning the element).
#[test]
fn pool_elements_survive_cancel_storm() {
    const ELEMENTS: u64 = 3;
    const THREADS: usize = 6;
    const OPS: usize = 500;
    let pool: Arc<QueuePool<u64>> = Arc::new(QueuePool::new());
    for e in 0..ELEMENTS {
        pool.put(e);
    }
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let pool = Arc::clone(&pool);
            std::thread::spawn(move || {
                for i in 0..OPS {
                    let f = pool.take();
                    if (t + i) % 2 == 0 && f.cancel() {
                        continue;
                    }
                    let e = f.wait().unwrap();
                    pool.put(e);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let mut recovered: Vec<_> = (0..ELEMENTS).map(|_| pool.take().wait().unwrap()).collect();
    recovered.sort_unstable();
    assert_eq!(recovered, (0..ELEMENTS).collect::<Vec<_>>());
}

/// Same for the stack pool, whose refused elements go through `put` again.
#[test]
fn stack_pool_refusal_roundtrip() {
    for _ in 0..200 {
        let pool: Arc<StackPool<u64>> = Arc::new(StackPool::new());
        let taker = pool.take();
        let p2 = Arc::clone(&pool);
        let putter = std::thread::spawn(move || p2.put(77));
        if !taker.cancel() {
            pool.put(taker.wait().unwrap());
        }
        putter.join().unwrap();
        assert_eq!(pool.take().wait(), Ok(77));
    }
}

/// Double cancellation and cancel-after-completion are no-ops.
#[test]
fn cancel_idempotency() {
    let s = Semaphore::new(1);
    s.acquire().wait().unwrap();
    let f = s.acquire();
    assert!(f.cancel());
    assert!(!f.cancel());

    let f2 = s.acquire();
    s.release();
    // f2 is completed now (it was the only live waiter).
    assert!(!f2.cancel());
    assert_eq!(f2.wait(), Ok(()));
}

/// Cancelled RawMutex waiters never receive the lock.
#[test]
fn cancelled_lock_request_is_never_woken() {
    let mutex = Arc::new(RawMutex::new());
    mutex.lock().wait().unwrap();
    let doomed = mutex.lock();
    let lucky = mutex.lock();
    assert!(doomed.cancel());
    mutex.unlock();
    assert_eq!(lucky.wait(), Ok(()));
    // `doomed` stays cancelled.
    assert_eq!(doomed.wait(), Err(cqs::Cancelled));
    mutex.unlock();
}

/// Mass cancellation reclaims whole segments; the queue keeps functioning
/// at any scale afterwards.
#[test]
fn mass_cancellation_then_reuse() {
    let s = Arc::new(Semaphore::new(1));
    s.acquire().wait().unwrap();
    for _round in 0..4 {
        let futures: Vec<_> = (0..2_000).map(|_| s.acquire()).collect();
        for f in &futures {
            assert!(f.cancel());
        }
    }
    // The semaphore still hands the permit over correctly.
    let f = s.acquire();
    s.release();
    assert_eq!(f.wait(), Ok(()));
    s.release();
    assert_eq!(s.available_permits(), 1);
}
