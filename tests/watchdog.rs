//! End-to-end tests for the `watch` runtime-health subsystem (run with
//! `--features watch`): real primitives publish waiter/holder records, the
//! watchdog detects a genuine ABBA deadlock through wait-graph cycle
//! analysis, reports it as structured JSON, and — under the eviction
//! policy — recovers by cancelling exactly one waiter through the ordinary
//! CQS cancellation path while the surviving thread proceeds.

#![cfg(feature = "watch")]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier as StdBarrier, Mutex as StdMutex};
use std::time::{Duration, Instant};

use cqs::watch::{ReportKind, Scanner, WatchConfig, WatchPolicy, Watchdog};
use cqs::{LockError, Mutex, Semaphore};
use cqs_harness::report::Json;

/// What the sink keeps of each report: kind, evicted generations, JSON.
type SunkReport = (ReportKind, Vec<u64>, String);

/// The flagship recovery scenario: two mutexes, two threads, opposite
/// acquisition order. The watchdog must (1) see the wait-for cycle, (2)
/// report it as JSON naming both edges, and (3) evict exactly one waiter —
/// which observes `LockError::Cancelled`, releases its first lock, and
/// thereby lets the other thread finish normally.
#[test]
fn watchdog_recovers_deadlock() {
    let a = Arc::new(Mutex::new(0u32));
    let b = Arc::new(Mutex::new(0u32));
    let a_id = a.watch_id();
    let b_id = b.watch_id();

    let reports: Arc<StdMutex<Vec<SunkReport>>> = Arc::new(StdMutex::new(Vec::new()));
    let sink_reports = Arc::clone(&reports);
    let watchdog = Watchdog::spawn(
        WatchConfig::new()
            // High stall threshold / deadline so the only trigger in this
            // test is the confirmed cycle, not age-based eviction (and so
            // waiters of concurrently running tests are never touched).
            .stall_threshold(Duration::from_secs(30))
            .scan_interval(Duration::from_millis(10))
            .confirm_cycle_scans(2)
            .policy(WatchPolicy::Evict {
                deadline: Duration::from_secs(120),
            }),
        move |report| {
            sink_reports.lock().unwrap().push((
                report.kind,
                report.evicted.clone(),
                report.to_json(),
            ));
        },
    );

    // Classic ABBA: both threads take their first lock, rendezvous, then
    // block forever on each other's lock — until the watchdog intervenes.
    let rendezvous = Arc::new(StdBarrier::new(2));
    let spawn_party = |first: Arc<Mutex<u32>>, second: Arc<Mutex<u32>>| {
        let rendezvous = Arc::clone(&rendezvous);
        std::thread::spawn(move || {
            let outer = first.lock().unwrap();
            rendezvous.wait();
            match second.lock() {
                Ok(inner) => {
                    drop(inner);
                    drop(outer);
                    "completed"
                }
                Err(LockError::Cancelled) => {
                    // Evicted by the watchdog: back out so the peer can go.
                    drop(outer);
                    "evicted"
                }
                Err(e) => panic!("unexpected lock failure: {e:?}"),
            }
        })
    };
    let t1 = spawn_party(Arc::clone(&a), Arc::clone(&b));
    let t2 = spawn_party(Arc::clone(&b), Arc::clone(&a));

    let mut outcomes = vec![t1.join().unwrap(), t2.join().unwrap()];
    outcomes.sort_unstable();
    assert_eq!(
        outcomes,
        ["completed", "evicted"],
        "exactly one waiter must be sacrificed and the other must proceed"
    );
    watchdog.stop();

    // Both locks must be healthy after recovery.
    drop(a.lock().unwrap());
    drop(b.lock().unwrap());

    let reports = reports.lock().unwrap();
    let deadlocks: Vec<_> = reports
        .iter()
        .filter(|(kind, _, _)| *kind == ReportKind::Deadlock)
        .collect();
    assert!(
        !deadlocks.is_empty(),
        "the cycle must be reported before it is resolved"
    );
    let evicted: Vec<u64> = deadlocks
        .iter()
        .flat_map(|(_, evicted, _)| evicted.iter().copied())
        .collect();
    assert_eq!(
        evicted.len(),
        1,
        "a two-thread cycle is broken by evicting exactly one waiter: {reports:?}"
    );

    // The structured report names both edges of the cycle.
    let (_, _, json) = deadlocks[0];
    let doc = Json::parse(json).expect("report must be valid JSON");
    assert_eq!(
        doc.get("schema").and_then(Json::as_str),
        Some("cqs-watch/v1")
    );
    assert_eq!(doc.get("kind").and_then(Json::as_str), Some("deadlock"));
    let cycle = doc
        .get("cycle")
        .and_then(Json::as_arr)
        .expect("deadlock report carries the cycle");
    assert_eq!(cycle.len(), 2, "an ABBA cycle has two edges: {json}");
    let mut wanted: Vec<u64> = cycle
        .iter()
        .map(|edge| edge.get("wants").and_then(Json::as_f64).unwrap() as u64)
        .collect();
    wanted.sort_unstable();
    let mut expected = vec![a_id, b_id];
    expected.sort_unstable();
    assert_eq!(wanted, expected, "cycle must name both mutexes: {json}");
    for edge in cycle {
        assert_eq!(
            edge.get("wants_label").and_then(Json::as_str),
            Some("mutex.lock")
        );
    }
}

/// Observe-only stall detection: a semaphore waiter that can never get a
/// permit is flagged past the threshold, with queue depth and the permit
/// gauge in the report — and the primitive recovers once the permit is
/// finally released.
#[test]
fn scanner_reports_semaphore_stall_and_recovers() {
    let sem = Arc::new(Semaphore::new(1));
    sem.acquire().wait().unwrap(); // hold the only permit

    // Create the scanner before the waiter exists so its generation filter
    // includes the waiter but excludes unrelated tests' earlier waiters.
    let mut scanner = Scanner::new(
        WatchConfig::new()
            .stall_threshold(Duration::from_millis(50))
            .confirm_cycle_scans(2),
    );

    let sem2 = Arc::clone(&sem);
    let done = Arc::new(AtomicUsize::new(0));
    let done2 = Arc::clone(&done);
    let waiter = std::thread::spawn(move || {
        sem2.acquire().wait().unwrap();
        done2.store(1, Ordering::SeqCst);
        sem2.release();
    });

    let deadline = Instant::now() + Duration::from_secs(5);
    let stall = loop {
        assert!(Instant::now() < deadline, "stall never reported");
        std::thread::sleep(Duration::from_millis(20));
        let report = scanner
            .scan()
            .into_iter()
            .find(|r| r.kind == ReportKind::Stall);
        if let Some(report) = report {
            break report;
        }
    };

    assert!(
        stall.stalled.iter().any(|w| w.primitive == sem.watch_id()),
        "stall must name the semaphore's waiter: {stall:?}"
    );
    assert!(
        stall
            .queues
            .iter()
            .any(|q| q.primitive == sem.watch_id() && q.depth >= 1),
        "queue depth for the semaphore must be visible: {stall:?}"
    );
    assert!(
        stall
            .gauges
            .iter()
            .any(|g| g.primitive == sem.watch_id() && g.name == "state" && g.value == -1),
        "permit accounting gauge must show one waiter in debt: {stall:?}"
    );
    let doc = Json::parse(&stall.to_json()).expect("stall report must be valid JSON");
    assert_eq!(doc.get("kind").and_then(Json::as_str), Some("stall"));

    assert_eq!(done.load(Ordering::SeqCst), 0, "waiter must still be stuck");
    sem.release();
    waiter.join().unwrap();
    assert_eq!(done.load(Ordering::SeqCst), 1);
}

/// Deadline-based eviction end-to-end: a waiter stalled past the deadline
/// is cancelled through the CQS cancellation path — its blocking `wait`
/// returns `Cancelled` — and the semaphore's accounting stays intact.
#[test]
fn scanner_deadline_evicts_stalled_waiter() {
    let sem = Arc::new(Semaphore::new(1));
    sem.acquire().wait().unwrap();

    let mut scanner = Scanner::new(
        WatchConfig::new()
            .stall_threshold(Duration::from_millis(30))
            .policy(WatchPolicy::Evict {
                deadline: Duration::from_millis(80),
            }),
    );

    let sem2 = Arc::clone(&sem);
    let waiter = std::thread::spawn(move || sem2.acquire().wait());

    let deadline = Instant::now() + Duration::from_secs(5);
    let mut evicted = Vec::new();
    while evicted.is_empty() {
        assert!(Instant::now() < deadline, "waiter never evicted");
        std::thread::sleep(Duration::from_millis(20));
        for report in scanner.scan() {
            evicted.extend(report.evicted.iter().copied());
        }
    }
    assert_eq!(evicted.len(), 1, "exactly one waiter to evict");
    assert_eq!(
        waiter.join().unwrap(),
        Err(cqs::Cancelled),
        "the evicted waiter observes a plain cancellation"
    );

    // The permit held all along is still the only one: accounting survived.
    sem.release();
    sem.acquire().wait().unwrap();
    sem.release();
}
