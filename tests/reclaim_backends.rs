//! The three memory-reclamation backends (epoch, hazard-pointer,
//! owned-slot) are *observationally equivalent*: reclamation is a memory
//! concern, never a semantic one, so the same operation sequence must
//! produce identical outcomes on queues stamped with each backend — and
//! all three must agree with the sequential cell-array model.
//!
//! The second half is the memory-bound story: a chaos storm across 72
//! seeds with a deliberately *stalled* guard-holder planted on a side
//! thread. The epoch backend must defer everything behind the stalled pin
//! (its retired backlog grows with the churn), while hazard-pointer and
//! owned-slot — whose stalled guards protect nothing — keep reclaiming
//! throughout and end the storm with a bounded backlog.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex as StdMutex, OnceLock};

use proptest::prelude::*;

use cqs::reclaim::{flush_reclaimer, pin_with, retired_approx};
use cqs::{Cqs, CqsConfig, CqsFuture, FutureState, ReclaimerKind, SimpleCancellation};
use cqs_check::models::CellArrayModel;

/// Backend gauges (`retired_approx`) and chaos seeding are process-global;
/// tests in this binary serialize so one test's churn cannot pollute
/// another's backlog assertions.
fn serial() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: OnceLock<StdMutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| StdMutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

#[derive(Debug, Clone)]
enum Op {
    Suspend,
    Resume(u64),
    Cancel(usize),
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            3 => Just(Op::Suspend),
            3 => (0u64..1000).prop_map(Op::Resume),
            1 => (0usize..64).prop_map(Op::Cancel),
        ],
        0..100,
    )
}

/// Drives one queue through the sequence, checking every outcome against
/// the model; returns an error string naming the first divergence.
fn check_against_model(kind: ReclaimerKind, ops: &[Op]) -> Result<(), String> {
    let cqs: Cqs<u64> = Cqs::new(
        CqsConfig::new().segment_size(2).reclaimer(kind),
        SimpleCancellation,
    );
    assert_eq!(cqs.reclaimer(), kind, "constructor must stamp the backend");
    let mut model = CellArrayModel::default();
    let mut pending: Vec<(usize, CqsFuture<u64>)> = Vec::new();

    for (step, op) in ops.iter().enumerate() {
        let fail = |what: &str| Err(format!("[{kind}] step {step} {op:?}: {what}"));
        match op {
            Op::Suspend => {
                let cell = model.suspend_idx;
                let expected = model.suspend();
                let mut f = cqs.suspend().expect_future();
                match expected {
                    Some(v) => {
                        if !f.is_immediate() || f.try_get() != FutureState::Ready(v) {
                            return fail("expected immediate elimination");
                        }
                    }
                    None => {
                        if f.is_immediate() {
                            return fail("expected a parked waiter");
                        }
                        pending.push((cell, f));
                    }
                }
            }
            Op::Resume(v) => {
                let expected = model.resume(*v);
                let real = cqs.resume(*v);
                match expected {
                    Ok(Some(cell)) => {
                        if real.is_err() {
                            return fail("resume unexpectedly failed");
                        }
                        let Some(i) = pending.iter().position(|(c, _)| *c == cell) else {
                            return fail("completed waiter not tracked");
                        };
                        let (_, mut f) = pending.remove(i);
                        if f.try_get() != FutureState::Ready(*v) {
                            return fail("waiter did not observe the value");
                        }
                    }
                    Ok(None) => {
                        if real.is_err() {
                            return fail("parking resume unexpectedly failed");
                        }
                    }
                    Err(()) => {
                        if real.is_ok() {
                            return fail("resume of a cancelled cell must fail");
                        }
                    }
                }
            }
            Op::Cancel(i) => {
                if pending.is_empty() {
                    continue;
                }
                let i = i % pending.len();
                let (cell, f) = pending.remove(i);
                if !f.cancel() {
                    return fail("cancel of a pending waiter must succeed");
                }
                model.cancel(cell);
            }
        }
    }
    // Whatever remains is still pending under every backend.
    for (cell, mut f) in pending {
        if f.try_get() != FutureState::Pending {
            return Err(format!(
                "[{kind}] cell {cell}: untouched waiter is no longer pending"
            ));
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every backend runs the same sequence and agrees with the model —
    /// hence all three are observationally equivalent to each other.
    #[test]
    fn backends_are_observationally_equivalent(ops in ops()) {
        let _serial = serial();
        for kind in ReclaimerKind::ALL {
            if let Err(e) = check_against_model(kind, &ops) {
                prop_assert!(false, "{}", e);
            }
        }
    }
}

/// 72-seed suspend/resume/cancel storm with a planted stalled
/// guard-holder per backend. The holder takes a guard *of the backend
/// under churn* and sits on it for the whole storm:
///
/// * epoch: the stalled pin blocks the global epoch, so every displaced
///   waiter/segment defers — the backlog must visibly grow;
/// * hazard / owned-slot: a stalled guard publishes no hazard slots and
///   holds no stripe borrow, so reclamation proceeds and the backlog
///   stays bounded the entire time.
#[test]
fn stalled_guard_storm_defers_epoch_but_not_hazard_or_owned() {
    let _serial = serial();
    const THREADS: usize = 3;
    const OPS: usize = 40;
    // Hazard retires in per-thread batches scanned at a threshold; the
    // backlog bound is threads x (threshold + slots) with slack for the
    // storm threads' leftovers. Owned reclaims on the spot (bound 0 held
    // borrows, but a racing borrow can park a handful in limbo).
    const BOUNDED: usize = 512;

    for (i, seed) in (0..72u64).map(|i| (i, 0xC0DE_0000 + i * 7919)) {
        cqs_chaos::set_seed(seed);
        for kind in ReclaimerKind::ALL {
            let before = retired_approx(kind);
            let hold = Arc::new(AtomicBool::new(true));
            let ready = Arc::new(AtomicBool::new(false));
            let holder = {
                let (hold, ready) = (Arc::clone(&hold), Arc::clone(&ready));
                std::thread::spawn(move || {
                    let guard = pin_with(kind);
                    ready.store(true, Ordering::Release);
                    while hold.load(Ordering::Acquire) {
                        std::thread::yield_now();
                    }
                    drop(guard);
                })
            };
            while !ready.load(Ordering::Acquire) {
                std::hint::spin_loop();
            }

            let cqs: Arc<Cqs<u64>> = Arc::new(Cqs::new(
                CqsConfig::new()
                    .segment_size(2)
                    .freelist_slots(0)
                    .reclaimer(kind),
                SimpleCancellation,
            ));
            let joins: Vec<_> = (0..THREADS)
                .map(|t| {
                    let cqs = Arc::clone(&cqs);
                    std::thread::spawn(move || {
                        for op in 0..OPS {
                            let f = cqs.suspend().expect_future();
                            if (op + t) % 3 == 0 && f.cancel() {
                                continue;
                            }
                            // Simple cancellation: a resume landing on a
                            // cancelled cell returns the value; restart.
                            let mut v = (op * THREADS + t) as u64;
                            while let Err(bounced) = cqs.resume(v) {
                                v = bounced;
                            }
                            // The value may land in our cell or a racing
                            // sibling's; either way nobody is stranded:
                            // THREADS resumes cover THREADS non-cancelled
                            // waiters, so this wait must finish.
                            f.wait().unwrap();
                        }
                    })
                })
                .collect();
            for j in joins {
                j.join().unwrap();
            }

            let during = retired_approx(kind).saturating_sub(before);
            match kind {
                // The churn displaced hundreds of waiter records and
                // segments behind the stalled pin; epoch must have
                // deferred a visible share of them.
                ReclaimerKind::Epoch => assert!(
                    during > 0,
                    "seed {seed:#x} round {i}: epoch reclaimed through a stalled pin \
                     (backlog {during})"
                ),
                ReclaimerKind::Hazard | ReclaimerKind::Owned => assert!(
                    during < BOUNDED,
                    "seed {seed:#x} round {i}: {kind} backlog {during} not bounded \
                     under a stalled guard"
                ),
            }

            hold.store(false, Ordering::Release);
            holder.join().unwrap();
            drop(cqs);
            flush_reclaimer(kind);
        }
    }
    cqs_chaos::disable();
}
