//! Integration tests spanning multiple crates: primitives composed with
//! each other, with the executor, and with real thread workloads.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use cqs::exec::{CoroStep, Executor, FnCoroutine};
use cqs::{
    Barrier, CountDownLatch, CyclicBarrier, FutureState, Mutex, QueuePool, RawMutex, Semaphore,
    StackPool,
};

/// A work-crew pattern: a latch gates the start, a barrier synchronizes
/// phases, a semaphore bounds a "scarce" phase, and a mutex protects the
/// shared log.
#[test]
fn work_crew_composition() {
    const WORKERS: usize = 6;
    const PHASES: usize = 20;

    let start = Arc::new(CountDownLatch::new(1));
    let phase_barrier = Arc::new(CyclicBarrier::new(WORKERS));
    let scarce = Arc::new(Semaphore::new(2));
    let log = Arc::new(Mutex::new(Vec::<(usize, usize)>::new()));
    let in_scarce = Arc::new(AtomicUsize::new(0));

    let handles: Vec<_> = (0..WORKERS)
        .map(|w| {
            let start = Arc::clone(&start);
            let phase_barrier = Arc::clone(&phase_barrier);
            let scarce = Arc::clone(&scarce);
            let log = Arc::clone(&log);
            let in_scarce = Arc::clone(&in_scarce);
            std::thread::spawn(move || {
                start.wait().unwrap();
                for phase in 0..PHASES {
                    {
                        let _permit = scarce.acquire_blocking().unwrap();
                        let now = in_scarce.fetch_add(1, Ordering::SeqCst) + 1;
                        assert!(now <= 2, "semaphore admitted {now} > 2");
                        in_scarce.fetch_sub(1, Ordering::SeqCst);
                    }
                    log.lock().unwrap().push((phase, w));
                    phase_barrier.arrive().wait().unwrap();
                }
            })
        })
        .collect();

    start.count_down();
    for h in handles {
        h.join().unwrap();
    }

    let log = log.lock().unwrap();
    assert_eq!(log.len(), WORKERS * PHASES);
    // Thanks to the barrier, entries are grouped by phase.
    for (i, (phase, _)) in log.iter().enumerate() {
        assert_eq!(*phase, i / WORKERS, "barrier failed to separate phases");
    }
}

/// A pool feeding coroutines on the executor, closed out by a latch.
#[test]
fn executor_pool_latch_composition() {
    const TASKS: usize = 300;
    let executor = Executor::new(3);
    let pool: Arc<QueuePool<u64>> = Arc::new(QueuePool::new());
    let done = Arc::new(CountDownLatch::new(TASKS));
    let sum = Arc::new(AtomicU64::new(0));

    for _ in 0..TASKS {
        let pool = Arc::clone(&pool);
        let done = Arc::clone(&done);
        let sum = Arc::clone(&sum);
        let mut pending: Option<cqs::CqsFuture<u64>> = None;
        executor.spawn(FnCoroutine::new(move |waker| {
            let mut f = match pending.take() {
                Some(f) => f,
                None => pool.take(),
            };
            match f.try_get() {
                FutureState::Ready(v) => {
                    sum.fetch_add(v, Ordering::SeqCst);
                    done.count_down();
                    CoroStep::Done
                }
                FutureState::Pending => {
                    waker.wake_on_ready(&f);
                    pending = Some(f);
                    CoroStep::Pending
                }
                FutureState::Cancelled => unreachable!(),
            }
        }));
    }

    // Feed the pool from the main thread while coroutines wait.
    for v in 0..TASKS as u64 {
        pool.put(v);
    }
    done.wait().unwrap();
    executor.wait_idle();
    assert_eq!(
        sum.load(Ordering::SeqCst),
        (TASKS as u64 - 1) * TASKS as u64 / 2
    );
}

/// Producer/consumer across two pools with a stack pool as the free-list.
#[test]
fn two_pool_recycling() {
    const BUFFERS: u64 = 4;
    const MESSAGES: usize = 2_000;

    let free: Arc<StackPool<u64>> = Arc::new(StackPool::new());
    let full: Arc<QueuePool<u64>> = Arc::new(QueuePool::new());
    for b in 0..BUFFERS {
        free.put(b);
    }

    let producer = {
        let free = Arc::clone(&free);
        let full = Arc::clone(&full);
        std::thread::spawn(move || {
            for _ in 0..MESSAGES {
                let buffer = free.take().wait().unwrap();
                full.put(buffer);
            }
        })
    };
    let consumer = {
        let free = Arc::clone(&free);
        let full = Arc::clone(&full);
        std::thread::spawn(move || {
            for _ in 0..MESSAGES {
                let buffer = full.take().wait().unwrap();
                free.put(buffer);
            }
        })
    };
    producer.join().unwrap();
    consumer.join().unwrap();

    // All buffers are back in the free list.
    let mut recovered: Vec<u64> = (0..BUFFERS).map(|_| free.take().wait().unwrap()).collect();
    recovered.sort_unstable();
    assert_eq!(recovered, (0..BUFFERS).collect::<Vec<_>>());
}

/// The raw mutex interoperates with scoped threads and try_lock under load.
#[test]
fn raw_mutex_with_scoped_threads() {
    let mutex = RawMutex::new();
    let counter = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..4 {
            scope.spawn(|| {
                for _ in 0..1_000 {
                    if mutex.try_lock() {
                        counter.fetch_add(1, Ordering::SeqCst);
                        mutex.unlock();
                    } else {
                        mutex.lock().wait().unwrap();
                        counter.fetch_add(1, Ordering::SeqCst);
                        mutex.unlock();
                    }
                }
            });
        }
    });
    assert_eq!(counter.load(Ordering::SeqCst), 4_000);
    assert!(!mutex.is_locked());
}

/// Single-use barrier completes exactly once per party even when waits and
/// arrivals interleave with semaphore traffic.
#[test]
fn barrier_with_semaphore_preamble() {
    const PARTIES: usize = 5;
    let barrier = Arc::new(Barrier::new(PARTIES));
    let semaphore = Arc::new(Semaphore::new(2));
    let past = Arc::new(AtomicUsize::new(0));
    let handles: Vec<_> = (0..PARTIES)
        .map(|_| {
            let barrier = Arc::clone(&barrier);
            let semaphore = Arc::clone(&semaphore);
            let past = Arc::clone(&past);
            std::thread::spawn(move || {
                let _permit = semaphore.acquire_blocking().unwrap();
                drop(_permit);
                barrier.arrive().wait().unwrap();
                past.fetch_add(1, Ordering::SeqCst);
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(past.load(Ordering::SeqCst), PARTIES);
}
