//! Pins the `WakeBatch` panic-isolation contract (no cargo feature
//! needed): a panicking waker — an `on_ready` callback, in practice also a
//! settlement hook or task waker — must never prevent the *other* wakes in
//! the batch from firing, on the inline path, on the heap-spill path, and
//! on the unwind path where the batch is dropped rather than fired.
//!
//! Before the hardening, `fire()` ran wakes bare: the first panicking
//! callback unwound out of the loop and every wake after it was lost (its
//! waiter already held a terminal request, so a parked thread would never
//! be unparked — the silent-hang shape the crash-fault injector hunts).

use cqs_future::{CqsFuture, PendingWake, Request, WakeBatch, WAKE_BATCH_INLINE};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// A completed request whose waiter bumps `fired` when woken.
fn counting_wake(fired: &Arc<AtomicUsize>) -> PendingWake {
    let r: Arc<Request<u32>> = Arc::new(Request::new());
    let fired = Arc::clone(fired);
    CqsFuture::suspended(Arc::clone(&r)).on_ready(move || {
        fired.fetch_add(1, Ordering::SeqCst);
    });
    r.complete_deferred(0).unwrap()
}

/// A completed request whose waiter bumps `fired` and then panics.
fn panicking_wake(fired: &Arc<AtomicUsize>) -> PendingWake {
    let r: Arc<Request<u32>> = Arc::new(Request::new());
    let fired = Arc::clone(fired);
    CqsFuture::suspended(Arc::clone(&r)).on_ready(move || {
        fired.fetch_add(1, Ordering::SeqCst);
        panic!("waker panicked mid-batch");
    });
    r.complete_deferred(0).unwrap()
}

/// Builds a batch of `total` wakes with panicking wakes at `panic_at`,
/// fires it, and returns (fired-count handle, captured panic).
fn run_batch(
    total: usize,
    panic_at: &[usize],
) -> (Arc<AtomicUsize>, Option<Box<dyn std::any::Any + Send>>) {
    let fired = Arc::new(AtomicUsize::new(0));
    let mut batch = WakeBatch::new();
    for i in 0..total {
        if panic_at.contains(&i) {
            batch.push(panicking_wake(&fired));
        } else {
            batch.push(counting_wake(&fired));
        }
    }
    assert_eq!(batch.len(), total);
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| batch.fire()));
    (fired, outcome.err())
}

#[test]
fn inline_path_survives_a_panicking_waker() {
    let total = WAKE_BATCH_INLINE; // all inline, no spill
    let (fired, panic) = run_batch(total, &[1]);
    assert_eq!(
        fired.load(Ordering::SeqCst),
        total,
        "wakes after the panicking waker were lost"
    );
    let panic = panic.expect("the waker's panic must surface to the caller");
    let message = panic.downcast_ref::<&str>().copied().unwrap_or_default();
    assert_eq!(message, "waker panicked mid-batch");
}

#[test]
fn spill_path_survives_panicking_wakers() {
    let total = WAKE_BATCH_INLINE + 6;
    // One panic on the inline segment, one on the heap spill: both
    // segments must keep draining past their panicking entry.
    let (fired, panic) = run_batch(total, &[2, WAKE_BATCH_INLINE + 3]);
    assert_eq!(
        fired.load(Ordering::SeqCst),
        total,
        "wakes after a panicking waker were lost (spill path)"
    );
    assert!(panic.is_some(), "the first panic must surface");
}

#[test]
fn first_of_several_panics_is_the_one_rethrown() {
    let fired = Arc::new(AtomicUsize::new(0));
    let mut batch = WakeBatch::new();
    let r: Arc<Request<u32>> = Arc::new(Request::new());
    CqsFuture::suspended(Arc::clone(&r)).on_ready(|| panic!("first"));
    batch.push(r.complete_deferred(0).unwrap());
    let r: Arc<Request<u32>> = Arc::new(Request::new());
    CqsFuture::suspended(Arc::clone(&r)).on_ready(|| panic!("second"));
    batch.push(r.complete_deferred(0).unwrap());
    batch.push(counting_wake(&fired));
    let panic = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| batch.fire()))
        .expect_err("panics must surface");
    assert_eq!(panic.downcast_ref::<&str>(), Some(&"first"));
    assert_eq!(fired.load(Ordering::SeqCst), 1);
}

/// The unwind path: a batch dropped (as during the poison-and-close
/// recovery in `cqs-core`) still fires every wake and *swallows* waker
/// panics — re-raising from the destructor would abort the process when
/// the drop already runs during an unwind.
#[test]
fn dropped_batch_fires_everything_and_swallows_panics() {
    let fired = Arc::new(AtomicUsize::new(0));
    let total = WAKE_BATCH_INLINE + 4;
    let mut batch = WakeBatch::new();
    for i in 0..total {
        if i == 0 || i == WAKE_BATCH_INLINE + 1 {
            batch.push(panicking_wake(&fired));
        } else {
            batch.push(counting_wake(&fired));
        }
    }
    drop(batch); // must not unwind
    assert_eq!(
        fired.load(Ordering::SeqCst),
        total,
        "drop-path firing lost wakes after a panicking waker"
    );
}

/// The must-deliver token contract: a `PendingWake` dropped *unfired*
/// (its holder unwound between extraction and `fire()`, the shape an
/// injected crash fault produces) still delivers its wake-ups — and
/// swallows a panicking waker, since the drop may run mid-unwind.
#[test]
fn dropped_pending_wake_still_delivers() {
    let fired = Arc::new(AtomicUsize::new(0));
    drop(counting_wake(&fired));
    assert_eq!(fired.load(Ordering::SeqCst), 1, "dropped wake was lost");

    let fired = Arc::new(AtomicUsize::new(0));
    drop(panicking_wake(&fired)); // must not unwind
    assert_eq!(fired.load(Ordering::SeqCst), 1);

    // A parked thread behind the dropped token is unparked.
    let r: Arc<Request<u32>> = Arc::new(Request::new());
    let f = CqsFuture::suspended(Arc::clone(&r));
    let waiter = std::thread::spawn(move || f.wait());
    std::thread::sleep(std::time::Duration::from_millis(20));
    drop(r.complete_deferred(5).unwrap());
    assert_eq!(waiter.join().unwrap(), Ok(5), "parked waiter was stranded");
}

/// End-to-end shape: a parked thread behind a panicking waker in the same
/// batch is still unparked.
#[test]
fn parked_waiter_behind_panicking_waker_is_unparked() {
    let fired = Arc::new(AtomicUsize::new(0));
    let mut batch = WakeBatch::new();
    batch.push(panicking_wake(&fired));
    let r: Arc<Request<u32>> = Arc::new(Request::new());
    let f = CqsFuture::suspended(Arc::clone(&r));
    let waiter = std::thread::spawn(move || f.wait());
    std::thread::sleep(std::time::Duration::from_millis(20));
    batch.push(r.complete_deferred(7).unwrap());
    let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| batch.fire()));
    assert_eq!(waiter.join().unwrap(), Ok(7), "parked waiter was stranded");
}
