//! Property-based tests for [`cqs::ShardedSemaphore`]: random operation
//! sequences executed single-threaded against
//!
//! 1. an exact sequential reference model of the sharded protocol
//!    (per-shard banks + FIFO queues, rebalance pulses every
//!    `interval`-th banking release, the quiescence sweep when the last
//!    holder releases), checking outcome agreement and global permit
//!    conservation after every step, and
//! 2. a plain [`cqs::Semaphore`] when `shards == 1`, where the sharded
//!    wrapper must be observationally identical (same immediate/pending
//!    outcomes, same FIFO wake order, same available count).

use std::collections::VecDeque;

use proptest::prelude::*;

use cqs::{CqsFuture, FutureState, Semaphore, ShardedSemaphore};

#[derive(Debug, Clone)]
enum Op {
    /// `acquire_at(home)`.
    Acquire(usize),
    /// `release_at(home)` — skipped when nothing is held.
    Release(usize),
    /// `release_n_at(home, k)` with `k` clamped to the held count.
    ReleaseN(usize, usize),
    /// Cancel the pending waiter with this (wrapped) index.
    Cancel(usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0usize..8).prop_map(Op::Acquire),
        3 => (0usize..8).prop_map(Op::Release),
        1 => ((0usize..8), (1usize..4)).prop_map(|(h, k)| Op::ReleaseN(h, k)),
        1 => (0usize..32).prop_map(Op::Cancel),
    ]
}

fn configs() -> impl Strategy<Value = (usize, usize, u64, Vec<Op>)> {
    (
        1usize..6, // permits
        1usize..5, // shards
        1u64..5,   // rebalance interval
        prop::collection::vec(op_strategy(), 0..120),
    )
}

/// Exact sequential model of the sharded protocol. Permit conservation is
/// structural: every permit is either in some shard's bank or held.
struct Model {
    banks: Vec<usize>,
    waiters: Vec<VecDeque<usize>>,
    streak: Vec<u64>,
    held: usize,
    interval: u64,
}

impl Model {
    fn new(permits: usize, shards: usize, interval: u64) -> Self {
        let banks = (0..shards)
            .map(|i| permits / shards + usize::from(i < permits % shards))
            .collect();
        Model {
            banks,
            waiters: vec![VecDeque::new(); shards],
            streak: vec![0; shards],
            held: 0,
            interval,
        }
    }

    fn shards(&self) -> usize {
        self.banks.len()
    }

    /// `Some(())` = immediate grant, `None` = parked on `home`'s queue.
    fn acquire_at(&mut self, home: usize, id: usize) -> Option<()> {
        let n = self.shards();
        let home = home % n;
        for d in 0..n {
            let s = (home + d) % n;
            if self.banks[s] > 0 {
                self.banks[s] -= 1;
                self.held += 1;
                return Some(());
            }
        }
        self.waiters[home].push_back(id);
        None
    }

    /// Returns the waiter ids served by this release, in wake order.
    fn release_at(&mut self, home: usize) -> Vec<usize> {
        let n = self.shards();
        let home = home % n;
        self.held -= 1;
        if let Some(id) = self.waiters[home].pop_front() {
            self.held += 1; // FIFO handoff: the waiter holds it now
            return vec![id];
        }
        self.banks[home] += 1;
        if n == 1 {
            return Vec::new();
        }
        let mut served = Vec::new();
        self.streak[home] += 1;
        if self.streak[home] >= self.interval {
            self.streak[home] = 0;
            served.extend(self.rebalance_from(home));
        }
        if self.held == 0 {
            // Quiescence sweep: the last holder just banked its permit, so
            // no future release will serve the parked waiters — migrate
            // from *every* bank (the real sweep's all-shards pass).
            served.extend(self.sweep());
        }
        served
    }

    fn release_n_at(&mut self, home: usize, k: usize) -> Vec<usize> {
        let n = self.shards();
        let home = home % n;
        self.held -= k;
        let mut served = Vec::new();
        let mut left = k;
        for d in 0..n {
            if left == 0 {
                break;
            }
            let s = (home + d) % n;
            let w = self.waiters[s].len().min(left);
            for _ in 0..w {
                served.push(self.waiters[s].pop_front().unwrap());
            }
            self.held += w;
            left -= w;
        }
        // No early return: like the real batched release, the trailing
        // home rebalance and the quiescence check run even when waiters
        // consumed all `k` permits — earlier banking releases may have
        // left idle credit at home next to waiters parked elsewhere.
        self.banks[home] += left;
        self.streak[home] = 0;
        served.extend(self.rebalance_from(home));
        if self.held == 0 {
            served.extend(self.sweep());
        }
        served
    }

    /// One all-shards rebalance pass: the sequential shadow of the real
    /// quiescence sweep. (The real sweep loops until nothing moves, but
    /// sequentially any movement serves a waiter, which leaves quiescence
    /// — so exactly one pass ever runs.)
    fn sweep(&mut self) -> Vec<usize> {
        let mut served = Vec::new();
        for home in 0..self.shards() {
            served.extend(self.rebalance_from(home));
        }
        served
    }

    fn rebalance_from(&mut self, home: usize) -> Vec<usize> {
        let n = self.shards();
        let mut served = Vec::new();
        for d in 1..n {
            let victim = (home + d) % n;
            let starving = self.waiters[victim].len();
            if starving == 0 {
                continue;
            }
            let got = self.banks[home].min(starving);
            if got == 0 {
                break;
            }
            self.banks[home] -= got;
            for _ in 0..got {
                served.push(self.waiters[victim].pop_front().unwrap());
            }
            self.held += got;
        }
        served
    }

    fn cancel(&mut self, id: usize) {
        for q in &mut self.waiters {
            q.retain(|w| *w != id);
        }
    }

    fn available(&self) -> usize {
        self.banks.iter().sum()
    }

    fn waiting(&self) -> usize {
        self.waiters.iter().map(VecDeque::len).sum()
    }
}

/// Pop the tracked future with this id and assert it is now `Ready`.
fn expect_served(real: &mut Vec<(usize, CqsFuture<()>)>, id: usize) -> Result<(), TestCaseError> {
    let (_, mut f) = real
        .iter()
        .position(|(i, _)| *i == id)
        .map(|i| real.remove(i))
        .ok_or_else(|| TestCaseError::fail(format!("served waiter {id} not tracked")))?;
    prop_assert_eq!(f.try_get(), FutureState::Ready(()));
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// The real sharded semaphore agrees with the sequential model on every
    /// operation outcome, and permits are conserved after every step.
    #[test]
    fn sharded_semaphore_matches_sequential_model(
        (permits, shards, interval, ops) in configs()
    ) {
        let s = ShardedSemaphore::with_shards_and_interval(permits, shards, interval);
        let mut model = Model::new(permits, shards, interval);
        let mut real: Vec<(usize, CqsFuture<()>)> = Vec::new();
        let mut next_id = 0usize;

        for op in ops {
            match op {
                Op::Acquire(home) => {
                    let f = s.acquire_at(home);
                    match model.acquire_at(home, next_id) {
                        Some(()) => prop_assert!(
                            f.is_immediate(),
                            "model grants immediately, real parked"
                        ),
                        None => {
                            prop_assert!(
                                !f.is_immediate(),
                                "model parks, real granted immediately"
                            );
                            real.push((next_id, f));
                        }
                    }
                    next_id += 1;
                }
                Op::Release(home) => {
                    if model.held == 0 {
                        continue; // never release what we do not hold
                    }
                    s.release_at(home);
                    for id in model.release_at(home) {
                        expect_served(&mut real, id)?;
                    }
                }
                Op::ReleaseN(home, k) => {
                    let k = k.min(model.held);
                    if k == 0 {
                        continue;
                    }
                    s.release_n_at(home, k);
                    for id in model.release_n_at(home, k) {
                        expect_served(&mut real, id)?;
                    }
                }
                Op::Cancel(k) => {
                    if real.is_empty() {
                        continue;
                    }
                    let (id, f) = real.remove(k % real.len());
                    prop_assert!(f.cancel());
                    model.cancel(id);
                }
            }
            // Conservation + bookkeeping agreement after every step.
            prop_assert_eq!(model.available() + model.held, permits);
            prop_assert_eq!(s.available_permits(), model.available());
            prop_assert_eq!(s.waiting(), model.waiting());
        }

        // Whatever remains parked is still pending; drain everything and
        // the full permit count must come back.
        for (id, mut f) in real.drain(..) {
            prop_assert_eq!(f.try_get(), FutureState::Pending);
            prop_assert!(f.cancel());
            model.cancel(id);
        }
        for _ in 0..model.held {
            s.release_at(0);
            model.release_at(0);
        }
        prop_assert_eq!(s.available_permits(), permits);
        prop_assert_eq!(s.waiting(), 0);
    }

    /// With a single shard the sharded wrapper is observationally identical
    /// to the plain FIFO semaphore: same immediate/pending outcomes, same
    /// wake order, same available count, for every op sequence.
    #[test]
    fn single_shard_is_equivalent_to_plain_semaphore(
        (permits, ops) in (1usize..5, prop::collection::vec(op_strategy(), 0..120))
    ) {
        let sharded = ShardedSemaphore::with_shards(permits, 1);
        let plain = Semaphore::new(permits);
        let mut held = 0usize;
        let mut pairs: Vec<(CqsFuture<()>, CqsFuture<()>)> = Vec::new();

        for op in ops {
            match op {
                Op::Acquire(home) => {
                    let a = sharded.acquire_at(home);
                    let b = plain.acquire();
                    prop_assert_eq!(a.is_immediate(), b.is_immediate());
                    if a.is_immediate() {
                        held += 1;
                    } else {
                        pairs.push((a, b));
                    }
                }
                Op::Release(home) | Op::ReleaseN(home, _) => {
                    if held == 0 {
                        continue;
                    }
                    // Exercise both release entry points on the sharded side.
                    if matches!(op, Op::Release(_)) {
                        sharded.release_at(home);
                    } else {
                        sharded.release_n_at(home, 1);
                    }
                    plain.release();
                    if pairs.is_empty() {
                        held -= 1; // banked on both sides
                    }
                    // A handoff keeps `held` unchanged; the front waiter
                    // (FIFO on both sides) is now ready.
                    else {
                        let (mut a, mut b) = pairs.remove(0);
                        prop_assert_eq!(a.try_get(), FutureState::Ready(()));
                        prop_assert_eq!(b.try_get(), FutureState::Ready(()));
                    }
                }
                Op::Cancel(k) => {
                    if pairs.is_empty() {
                        continue;
                    }
                    let (a, b) = pairs.remove(k % pairs.len());
                    prop_assert!(a.cancel());
                    prop_assert!(b.cancel());
                }
            }
            prop_assert_eq!(sharded.available_permits(), plain.available_permits());
            prop_assert_eq!(sharded.waiting(), plain.waiting());
        }

        for (mut a, mut b) in pairs {
            prop_assert_eq!(a.try_get(), FutureState::Pending);
            prop_assert_eq!(b.try_get(), FutureState::Pending);
        }
    }
}
