//! Exhaustive crash-placement exploration (run with `--features chaos`).
//!
//! The `cqs-check` [`FaultExplorer`] forces a panic at exactly one
//! (label, occurrence) placement per run and replays a scenario until the
//! placement space is exhausted. The scenarios here assert the hardening
//! contract at every placement: a crash at any fault-eligible window
//! leaves the primitive either **fully operational** (the panic surfaced
//! after the protocol finished, e.g. inside a waker) or **cleanly
//! poisoned** (every parked waiter settles promptly with an error, and
//! subsequent operations fail fast) — never a hung waiter, never a lost
//! or duplicated value.
//!
//! Built with the TEST-ONLY `planted-unguarded` feature, the poison
//! recovery around the batched resume traversals is compiled out and the
//! explorer must *find* the stranded-waiter counterexample — CI runs that
//! build to prove the explorer detects real unguarded windows.

#[cfg(feature = "chaos")]
mod enabled {
    use cqs::{Cancelled, Cqs, CqsConfig, SimpleCancellation};
    use cqs_check::FaultExplorer;
    use std::sync::{Arc, Mutex as StdMutex, OnceLock};
    use std::time::{Duration, Instant};

    /// Waiters per scenario (and the ceiling on meaningful occurrences).
    const W: usize = 4;
    /// A waiter parked this long is called stranded.
    const HANG: Duration = Duration::from_secs(3);
    /// Settling later than this counts as "until the timeout" (margin for
    /// scheduling noise below `HANG`).
    const STRANDED: Duration = Duration::from_secs(2);

    /// The global chaos scheduler slot is process-wide; explorations must
    /// not interleave with each other (or with seeded storms).
    fn serial_lock() -> &'static StdMutex<()> {
        static LOCK: OnceLock<StdMutex<()>> = OnceLock::new();
        LOCK.get_or_init(|| StdMutex::new(()))
    }

    /// Silences the panic hook while `f` runs: every placement injects a
    /// deliberate panic and the default hook would spray backtraces.
    fn with_quiet_panics<R>(f: impl FnOnce() -> R) -> R {
        let prev = std::panic::take_hook();
        // Deliberate (injected) panics stay quiet; real failures print.
        std::panic::set_hook(Box::new(|info| {
            let quiet = info
                .payload()
                .downcast_ref::<&str>()
                .map(|s| s.contains("injected crash fault"))
                .or_else(|| {
                    info.payload()
                        .downcast_ref::<String>()
                        .map(|s| s.contains("injected crash fault"))
                })
                .unwrap_or(false);
            if !quiet {
                eprintln!("panic: {info}");
            }
        }));
        let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
        std::panic::set_hook(prev);
        match out {
            Ok(r) => r,
            Err(p) => std::panic::resume_unwind(p),
        }
    }

    fn payload_message(payload: &(dyn std::any::Any + Send)) -> String {
        payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "opaque panic payload".to_string())
    }

    type Queue = Arc<Cqs<u64, SimpleCancellation>>;
    type WaiterJoin = std::thread::JoinHandle<(Result<u64, Cancelled>, Duration)>;

    fn new_queue() -> Queue {
        Arc::new(Cqs::new(
            CqsConfig::new().segment_size(2),
            SimpleCancellation,
        ))
    }

    /// Suspends `W` waiters from the scenario thread (FIFO cell order is
    /// then the suspend order, making placements deterministic) and parks
    /// each on its own thread with the hang deadline.
    fn park_waiters(cqs: &Queue) -> Vec<WaiterJoin> {
        (0..W)
            .map(|_| {
                let f = cqs.suspend().expect_future();
                std::thread::spawn(move || {
                    let start = Instant::now();
                    (f.wait_timeout(HANG), start.elapsed())
                })
            })
            .collect()
    }

    /// Joins the waiters and enforces the aftermath contract: no waiter
    /// strands until its timeout, no value is delivered twice, and the
    /// queue is poisoned iff a panic interrupted the protocol *before*
    /// every waiter was served. Returns the delivered values.
    fn check_aftermath(
        cqs: &Queue,
        joins: Vec<WaiterJoin>,
        crashed: bool,
    ) -> Result<Vec<u64>, String> {
        let mut got = Vec::new();
        for (i, j) in joins.into_iter().enumerate() {
            let (r, elapsed) = j.join().map_err(|_| format!("waiter {i} panicked"))?;
            // A waiter served only at its timeout was really stranded and
            // merely rescued by the deadline poll — flag it whatever the
            // result was.
            if elapsed >= STRANDED {
                return Err(format!(
                    "waiter {i} was parked until its timeout (result {r:?}, crashed={crashed})"
                ));
            }
            if let Ok(v) = r {
                got.push(v);
            }
        }
        let mut unique = got.clone();
        unique.sort_unstable();
        unique.dedup();
        if unique.len() != got.len() {
            return Err(format!("duplicate delivery: {got:?}"));
        }
        if crashed {
            // Fully operational (the panic surfaced after every waiter was
            // served — e.g. a waker crash) or cleanly poisoned; nothing in
            // between.
            if !cqs.is_poisoned() && got.len() != W {
                return Err(format!(
                    "crash left the queue unpoisoned with only {}/{W} waiters served",
                    got.len()
                ));
            }
        } else {
            if cqs.is_poisoned() {
                return Err("no crash, but the queue reports poisoned".to_string());
            }
            if got.len() != W {
                return Err(format!(
                    "no crash, but only {}/{W} waiters served",
                    got.len()
                ));
            }
        }
        if crashed && cqs.is_poisoned() {
            // Post-fault operations must fail fast, not hang.
            let start = Instant::now();
            let r = cqs.suspend().expect_future().wait_timeout(STRANDED);
            if r.is_ok() || start.elapsed() >= STRANDED {
                return Err("post-poison suspend did not fail fast".to_string());
            }
        }
        Ok(got)
    }

    /// Runs `batch` under `catch_unwind`; `Ok(true)` means the injected
    /// fault crashed it, `Err` means something *else* panicked.
    fn run_crashable(batch: impl FnOnce() + std::panic::UnwindSafe) -> Result<bool, String> {
        match std::panic::catch_unwind(batch) {
            Ok(()) => Ok(false),
            Err(p) => {
                let message = payload_message(p.as_ref());
                if message.contains("injected crash fault") {
                    Ok(true)
                } else {
                    Err(format!("unexpected panic: {message}"))
                }
            }
        }
    }

    fn resume_n_scenario() -> Result<(), String> {
        let cqs = new_queue();
        let joins = park_waiters(&cqs);
        let resumer = {
            let cqs = Arc::clone(&cqs);
            std::thread::spawn(move || {
                run_crashable(std::panic::AssertUnwindSafe(|| {
                    let _failed = cqs.resume_n(0..W as u64, W);
                }))
            })
        };
        let crashed = resumer.join().map_err(|_| "resumer double-panicked")??;
        check_aftermath(&cqs, joins, crashed).map(|_| ())
    }

    #[cfg(not(feature = "planted-unguarded"))]
    fn resume_all_scenario() -> Result<(), String> {
        let cqs = new_queue();
        let joins = park_waiters(&cqs);
        let broadcaster = {
            let cqs = Arc::clone(&cqs);
            std::thread::spawn(move || {
                run_crashable(std::panic::AssertUnwindSafe(|| {
                    let _delivered = cqs.resume_all(7);
                }))
            })
        };
        let crashed = broadcaster
            .join()
            .map_err(|_| "broadcaster double-panicked")??;
        // Broadcast clones one value, so delivered values may repeat:
        // bypass the uniqueness check by validating values first.
        let cqs2 = Arc::clone(&cqs);
        let mut got = Vec::new();
        for (i, j) in joins.into_iter().enumerate() {
            let (r, elapsed) = j.join().map_err(|_| format!("waiter {i} panicked"))?;
            if elapsed >= STRANDED {
                return Err(format!(
                    "waiter {i} was parked until its timeout (result {r:?}, crashed={crashed})"
                ));
            }
            match r {
                Ok(v) if v == 7 => got.push(v),
                Ok(v) => return Err(format!("waiter {i} got {v}, expected the broadcast 7")),
                Err(Cancelled) => {}
            }
        }
        if crashed {
            if !cqs2.is_poisoned() && got.len() != W {
                return Err(format!(
                    "crash left the broadcast unpoisoned with only {}/{W} served",
                    got.len()
                ));
            }
        } else if got.len() != W {
            return Err(format!(
                "no crash, but only {}/{W} got the broadcast",
                got.len()
            ));
        }
        Ok(())
    }

    #[cfg(not(feature = "planted-unguarded"))]
    fn close_scenario() -> Result<(), String> {
        let cqs = new_queue();
        let joins = park_waiters(&cqs);
        let closer = {
            let cqs = Arc::clone(&cqs);
            std::thread::spawn(move || run_crashable(std::panic::AssertUnwindSafe(|| cqs.close())))
        };
        let crashed = closer.join().map_err(|_| "closer double-panicked")??;
        for (i, j) in joins.into_iter().enumerate() {
            let (r, elapsed) = j.join().map_err(|_| format!("waiter {i} panicked"))?;
            match r {
                Ok(v) => return Err(format!("waiter {i} got value {v} from a pure close")),
                Err(Cancelled) => {
                    if elapsed >= STRANDED {
                        return Err(format!(
                            "waiter {i} hung through the close (crashed={crashed})"
                        ));
                    }
                }
            }
        }
        if !cqs.is_closed() {
            return Err("close returned but the queue is not closed".to_string());
        }
        if crashed && !cqs.is_poisoned() {
            return Err("a crash interrupted the close sweep without poisoning".to_string());
        }
        Ok(())
    }

    #[cfg(not(feature = "planted-unguarded"))]
    fn channel_deliver_scenario() -> Result<(), String> {
        use cqs::CqsChannel;
        use cqs_channel::SendError;
        let ch: CqsChannel<u64> = CqsChannel::unbounded();
        let mut crashed = false;
        let mut returned = 0usize;
        for v in [1u64, 2] {
            match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| ch.send(v).wait())) {
                Ok(Ok(())) => {}
                Ok(Err(SendError::Poisoned(_))) if crashed => returned += 1,
                Ok(Err(e)) => return Err(format!("send {v} failed unexpectedly: {e}")),
                Err(p) => {
                    let message = payload_message(p.as_ref());
                    if !message.contains("injected crash fault") {
                        return Err(format!("unexpected panic: {message}"));
                    }
                    crashed = true;
                }
            }
        }
        if crashed {
            if !ch.is_poisoned() {
                return Err("crash in deliver left the channel unpoisoned".to_string());
            }
            let start = Instant::now();
            match ch.receive().wait_timeout(STRANDED) {
                Err(_) if start.elapsed() < STRANDED => {}
                other => return Err(format!("post-poison receive did not fail fast: {other:?}")),
            }
            // Conservation: both elements in exactly one sink — the
            // crashed delivery's element is recovered into the orphan
            // list, accepted ones come back from the close sweep.
            let drained = ch.drain().len();
            if drained + returned != 2 {
                return Err(format!(
                    "conservation violated: drained {drained} + returned {returned} != 2"
                ));
            }
        } else {
            if ch.receive().wait() != Ok(1) || ch.receive().wait() != Ok(2) {
                return Err("FIFO broken without a crash".to_string());
            }
            ch.close();
        }
        Ok(())
    }

    /// A crash scenario: runs a protocol round and reports the contract
    /// violation (if any) as a counterexample message.
    #[cfg(not(feature = "planted-unguarded"))]
    type Scenario = fn() -> Result<(), String>;

    /// Scenario × label pairs: each label is explored against the
    /// scenario whose protocol crosses its window.
    #[cfg(not(feature = "planted-unguarded"))]
    fn placements() -> Vec<(&'static str, Scenario)> {
        vec![
            ("cqs.resume-n.fault.mid-batch", resume_n_scenario),
            ("cqs.resume-all.fault.pre-clone", resume_all_scenario),
            ("cqs.resume-n.fault.mid-batch", resume_all_scenario),
            ("future.wake.fault.pre-fire", resume_n_scenario),
            ("cqs.close.fault.mid-sweep", close_scenario),
            ("channel.deliver.fault.pre-count", channel_deliver_scenario),
        ]
    }

    /// The hardening proof: with the recovery paths compiled in, *every*
    /// crash placement in every fault-eligible window leaves the primitive
    /// operational or cleanly poisoned.
    #[cfg(not(feature = "planted-unguarded"))]
    #[test]
    fn every_crash_placement_recovers_or_poisons() {
        let _serial = serial_lock().lock().unwrap();
        with_quiet_panics(|| {
            for (label, scenario) in placements() {
                let report = FaultExplorer::with_labels(vec![label])
                    .max_occurrences(W + 2)
                    .explore(scenario)
                    .unwrap_or_else(|cex| panic!("[{label}] {cex}"));
                assert!(
                    report.injections >= 1,
                    "label {label} was never crossed by its scenario \
                     ({} cases run) — the window is dead",
                    report.cases_run
                );
            }
        });
    }

    /// The detector proof: with the poison recovery compiled out
    /// (TEST-ONLY `planted-unguarded`), the explorer must find the
    /// stranded-waiter counterexample in the mid-batch window.
    #[cfg(feature = "planted-unguarded")]
    #[test]
    fn explorer_detects_the_planted_unguarded_window() {
        let _serial = serial_lock().lock().unwrap();
        with_quiet_panics(|| {
            let cex = FaultExplorer::with_labels(vec!["cqs.resume-n.fault.mid-batch"])
                .max_occurrences(W)
                .explore(resume_n_scenario)
                .expect_err("the planted unguarded window must produce a counterexample");
            assert!(
                cex.message.contains("parked")
                    || cex.message.contains("hung")
                    || cex.message.contains("unpoisoned"),
                "unexpected counterexample shape: {cex}"
            );
        });
    }
}

#[cfg(not(feature = "chaos"))]
mod disabled {
    /// Without the `chaos` feature no fault window exists: the explorer
    /// visits every registered label once (its first crossing is never
    /// reached) and injects nothing.
    #[test]
    fn fault_exploration_is_inert_without_chaos() {
        let report = cqs_check::FaultExplorer::new()
            .explore(|| Ok(()))
            .expect("no placement can fail when none fires");
        assert_eq!(report.injections, 0);
        assert_eq!(report.cases_run, cqs_chaos::FAULT_LABELS.len());
    }
}
