//! The chaos label registry and the failing-seed decision trace (run
//! with `--features chaos`).
//!
//! `cqs_chaos::KNOWN_LABELS` is the frozen inventory of every labelled
//! race window in the workspace — the explorer's schedule points and the
//! storms' perturbation sites. These tests pin the registry's contract:
//! the table stays sorted and duplicate-free (so labels are stable
//! identifiers for traces and docs), every label that actually fires at
//! runtime is in the table, and a representative workload lights up
//! windows across the whole stack. The trace test covers the
//! failing-seed replay satellite: with a trace path configured (or
//! `CQS_CHAOS_TRACE` set), the per-label scheduling decisions are dumped
//! for post-mortem replay.

#![cfg(feature = "chaos")]

use std::collections::HashSet;
use std::sync::{Arc, Mutex as StdMutex, OnceLock};

use cqs::{Cqs, CqsChannel, CqsConfig, Semaphore, SimpleCancellation};

/// Chaos state is process-global; serialize (CI also uses
/// `--test-threads=1`).
fn serial() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: OnceLock<StdMutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| StdMutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

/// A workload touching every subsystem with labelled windows: suspension,
/// resumption, elimination, cancellation, batching, closing, segments.
fn representative_workload() {
    let s = Arc::new(Semaphore::new(1));
    s.acquire().wait().unwrap();
    let waiter = s.acquire();
    let aborted = s.acquire();
    assert!(aborted.cancel());
    s.release();
    waiter.wait().unwrap();
    s.release();

    let cqs: Cqs<u64, SimpleCancellation> =
        Cqs::new(CqsConfig::new().segment_size(2), SimpleCancellation);
    let fs: Vec<_> = (0..4).map(|_| cqs.suspend().expect_future()).collect();
    assert!(fs[1].cancel());
    let _failed = cqs.resume_n(0..3, 3);
    cqs.resume_all(9);
    cqs.close();
    drop(fs);

    // Channel windows: gated send, buffered + direct handoff, blocked
    // send grant, close sweep.
    let ch = CqsChannel::bounded(1);
    ch.send(1u64).wait().unwrap();
    let blocked = ch.send(2);
    assert!(!blocked.is_immediate());
    assert_eq!(ch.receive().wait(), Ok(1));
    blocked.wait().unwrap();
    assert_eq!(ch.receive().wait(), Ok(2));
    let pending = ch.receive();
    ch.send(3).wait().unwrap();
    assert_eq!(pending.wait(), Ok(3));
    ch.send(4).wait().unwrap();
    assert_eq!(ch.close(), vec![4]);
}

/// The frozen label table is sorted and duplicate-free — labels are
/// stable identifiers, so the table doubles as the documentation index
/// of every race window in the stack.
#[test]
fn known_label_table_is_sorted_and_unique() {
    let table = cqs_chaos::KNOWN_LABELS;
    assert!(!table.is_empty());
    for pair in table.windows(2) {
        assert!(
            pair[0] < pair[1],
            "KNOWN_LABELS must stay sorted and unique: {:?} >= {:?}",
            pair[0],
            pair[1]
        );
    }
}

/// Every label that fires at runtime is registered in `KNOWN_LABELS` —
/// adding an `inject!` site without extending the table is an error this
/// test catches — and the representative workload lights up windows in
/// several subsystems.
#[test]
fn fired_labels_are_known_and_span_the_stack() {
    let _serial = serial();
    cqs_chaos::set_seed(7);
    representative_workload();
    let fired = cqs_chaos::labels();
    cqs_chaos::disable();

    assert!(!fired.is_empty(), "the workload must hit labelled windows");
    let known: HashSet<&str> = cqs_chaos::KNOWN_LABELS.iter().copied().collect();
    for label in &fired {
        assert!(
            known.contains(label),
            "label {label:?} fired at runtime but is missing from KNOWN_LABELS \
             (crates/chaos/src/lib.rs)"
        );
    }
    for prefix in ["cqs.", "cell.", "channel.", "future."] {
        assert!(
            fired.iter().any(|l| l.starts_with(prefix)),
            "no {prefix}* window fired; got {fired:?}"
        );
    }
}

/// The failing-seed replay satellite: with a trace path configured the
/// per-label scheduling decisions (pass/spin/yield/sleep and scheduler
/// handoffs) are recorded and can be dumped for post-mortem analysis.
/// `CQS_CHAOS_TRACE=<path>` wires the same mechanism through the
/// environment and a panic hook dumps automatically on failure.
#[test]
fn trace_path_records_and_dumps_decisions() {
    let _serial = serial();
    // Keep the artifact inside the workspace (tests run with the package
    // root as the working directory).
    let path = std::path::PathBuf::from("target/chaos-trace-test.log");
    let _ = std::fs::remove_file(&path);

    cqs_chaos::set_trace_path(Some(path.clone()));
    cqs_chaos::set_seed(11);
    representative_workload();
    let decisions = cqs_chaos::trace_decision_count();
    assert!(decisions > 0, "a seeded workload must record decisions");

    let dumped = cqs_chaos::dump_trace().expect("a trace path is configured");
    assert_eq!(dumped, path);
    cqs_chaos::set_trace_path(None);
    cqs_chaos::disable();

    let text = std::fs::read_to_string(&path).expect("trace file must exist");
    // Data lines are `t<thread> <label> <action>[(param)]`; `#` lines are
    // the header.
    let data: Vec<&str> = text.lines().filter(|l| !l.starts_with('#')).collect();
    assert!(
        !data.is_empty() && data.len() as u64 <= decisions,
        "trace dump must hold the recorded decisions (ring-capped): \
         {} lines for {decisions} decisions",
        data.len()
    );
    let known: HashSet<&str> = cqs_chaos::KNOWN_LABELS.iter().copied().collect();
    for line in data.iter().take(50) {
        let label = line.split_whitespace().nth(1).unwrap_or("");
        assert!(
            known.contains(label),
            "trace line does not name a known label: {line:?}"
        );
    }
    let _ = std::fs::remove_file(&path);
}
