//! Property-based test for the segment-native `CqsChannel`: random
//! single-threaded send/receive/cancel sequences executed against the
//! real channel while every completed operation is replayed, in lockstep,
//! through the `ChannelLin` sequential model from `cqs-check` — the same
//! model the linearizability storms search against. The model accepting
//! every step proves FIFO pairing equivalence: sends linearize within
//! capacity, receives pop in send order, and cancelled operations are
//! no-ops.

use std::collections::VecDeque;

use proptest::prelude::*;

use cqs::{ChannelRecv, ChannelSend, CqsChannel};
use cqs_check::{ChannelLin, LinModel, Operation, RESP_CANCELLED, RESP_OK};

#[derive(Debug, Clone)]
enum Op {
    Send(u64),
    Receive,
    CancelReceive(usize),
    CancelSend(usize),
}

fn ops() -> impl Strategy<Value = (Option<usize>, Vec<Op>)> {
    let capacity = prop_oneof![3 => (1usize..5).prop_map(Some), 1 => Just(None)];
    capacity.prop_flat_map(|capacity| {
        (
            Just(capacity),
            prop::collection::vec(
                prop_oneof![
                    3 => (1u64..1_000).prop_map(Op::Send),
                    3 => Just(Op::Receive),
                    1 => (0usize..16).prop_map(Op::CancelReceive),
                    1 => (0usize..16).prop_map(Op::CancelSend),
                ],
                0..80,
            ),
        )
    })
}

/// Steps `model` with one completed operation, failing the property if
/// the sequential channel rejects it.
fn step(
    model: &mut ChannelLin,
    op: &'static str,
    invoke: u64,
    response: u64,
) -> Result<(), TestCaseError> {
    let operation = Operation {
        thread: 0,
        instance: 0,
        op,
        invoke_value: invoke,
        response_value: response,
        invoked: 0,
        responded: 1,
    };
    match model.step(&operation) {
        Some(next) => {
            *model = next;
            Ok(())
        }
        None => Err(TestCaseError::fail(format!(
            "ChannelLin rejected {op} invoke={invoke} response={response}"
        ))),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn cqs_channel_matches_channel_lin((capacity, ops) in ops()) {
        let ch: CqsChannel<u64> = match capacity {
            Some(c) => CqsChannel::bounded(c),
            None => CqsChannel::unbounded(),
        };
        let mut model = ChannelLin::new(capacity.map(|c| c as u64));
        // Mirror of the model queue, for predicting receive values.
        let mut in_flight: VecDeque<u64> = VecDeque::new();
        let mut pending_receives: VecDeque<ChannelRecv<u64>> = VecDeque::new();
        let mut blocked_sends: VecDeque<(u64, ChannelSend<u64>)> = VecDeque::new();

        for op in ops {
            match op {
                Op::Send(v) => {
                    let f = ch.send(v);
                    if f.is_immediate() {
                        step(&mut model, "chan.send", v, RESP_OK)?;
                        if let Some(r) = pending_receives.pop_front() {
                            // Direct hand-off to the oldest waiting receiver.
                            prop_assert_eq!(r.wait(), Ok(v));
                            step(&mut model, "chan.recv", 0, v)?;
                        } else {
                            in_flight.push_back(v);
                        }
                        prop_assert!(f.wait().is_ok());
                    } else {
                        // At capacity: the send linearizes later, at its grant.
                        prop_assert!(capacity.is_some_and(|c| in_flight.len() >= c));
                        blocked_sends.push_back((v, f));
                    }
                }
                Op::Receive => {
                    let r = ch.receive();
                    if let Some(v) = in_flight.pop_front() {
                        prop_assert!(r.is_immediate());
                        prop_assert_eq!(r.wait(), Ok(v));
                        step(&mut model, "chan.recv", 0, v)?;
                        // Freeing a slot grants the oldest blocked send,
                        // which linearizes (and buffers its element) now.
                        if let Some((gv, gf)) = blocked_sends.pop_front() {
                            prop_assert!(gf.wait().is_ok());
                            step(&mut model, "chan.send", gv, RESP_OK)?;
                            in_flight.push_back(gv);
                        }
                    } else {
                        prop_assert!(!r.is_immediate());
                        pending_receives.push_back(r);
                    }
                }
                Op::CancelReceive(k) => {
                    if pending_receives.is_empty() {
                        continue;
                    }
                    let r = pending_receives.remove(k % pending_receives.len()).unwrap();
                    // Sequential execution: no delivery can race the cancel.
                    prop_assert!(r.cancel());
                    step(&mut model, "chan.recv", 0, RESP_CANCELLED)?;
                }
                Op::CancelSend(k) => {
                    if blocked_sends.is_empty() {
                        continue;
                    }
                    let (v, f) = blocked_sends.remove(k % blocked_sends.len()).unwrap();
                    prop_assert!(f.cancel());
                    match f.wait() {
                        Err(e) => prop_assert_eq!(e.into_inner(), v),
                        Ok(()) => prop_assert!(false, "cancelled blocked send completed"),
                    }
                    step(&mut model, "chan.send", v, RESP_CANCELLED)?;
                }
            }
        }

        // Wind-down: cancel the leftover waiters, then close and check
        // that exactly the model's in-flight elements come back in order.
        for r in pending_receives {
            prop_assert!(r.cancel());
            step(&mut model, "chan.recv", 0, RESP_CANCELLED)?;
        }
        for (v, f) in blocked_sends {
            prop_assert!(f.cancel());
            match f.wait() {
                Err(e) => prop_assert_eq!(e.into_inner(), v),
                Ok(()) => prop_assert!(false, "cancelled blocked send completed"),
            }
            step(&mut model, "chan.send", v, RESP_CANCELLED)?;
        }
        let returned = ch.close();
        prop_assert_eq!(returned, Vec::from(in_flight));
    }
}
