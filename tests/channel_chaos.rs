//! Seeded chaos storms for the segment-native `CqsChannel` and the
//! pinned-seed replay of the legacy channel's timeout-vs-delivery window
//! (run with `--features chaos`).
//!
//! The storms drive send/receive/cancel/close traffic across 72 fixed
//! seeds while every labelled `channel.*` race window (claim vs. retrieve,
//! deliver vs. cancel, grant vs. timeout, close vs. in-flight send) is
//! stretched by the seeded scheduler, and assert the channel's
//! conservation contract under each schedule:
//!
//! * **zero lost elements** — every element sent lands in exactly one
//!   sink: a receiver, a `SendError`, or the `close()`/`drain()` sweep;
//! * **exactly-once delivery** — sums and counts of distinct elements
//!   match across the storm (a duplicate or a drop breaks both);
//! * **zero leaked capacity** — after quiescence a bounded channel
//!   accepts exactly `capacity` immediate sends again.
//!
//! Every assertion message carries the active seed: replay with
//! `CQS_CHAOS_SEED=<seed> cargo test --features chaos --test channel_chaos
//! -- --test-threads=1`.

#![cfg(feature = "chaos")]

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex as StdMutex, OnceLock};
use std::time::Duration;

use cqs::{Channel, CqsChannel, RecvError};

/// Chaos seeding is process-global; storms must not interleave.
fn storm_lock() -> &'static StdMutex<()> {
    static LOCK: OnceLock<StdMutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| StdMutex::new(()))
}

/// 64+ distinct, reproducible seeds (acceptance floor is 64).
fn seeds() -> impl Iterator<Item = u64> {
    (0..72u64).map(|i| 0x5EED_0000 + i * 7919)
}

/// Far above any chaos-induced delay; a miss means a lost wakeup.
const DEADLINE: Duration = Duration::from_secs(10);

/// One send/receive/cancel storm round on `ch` under the current seed:
/// 2 senders push distinct values (some sends aborting), 2 receivers
/// drain with tiny timeouts until the senders are done and the channel is
/// empty. Returns `(accepted_sum, received_sum, accepted_n, received_n)`.
fn conservation_round(ch: Arc<CqsChannel<u64>>, seed: u64) -> (u64, u64, usize, usize) {
    const SENDERS: u64 = 2;
    const PER_SENDER: u64 = 15;
    let accepted_sum = Arc::new(AtomicU64::new(0));
    let accepted_n = Arc::new(AtomicUsize::new(0));
    let received_sum = Arc::new(AtomicU64::new(0));
    let received_n = Arc::new(AtomicUsize::new(0));
    let done = Arc::new(AtomicBool::new(false));

    let mut joins = Vec::new();
    for t in 0..SENDERS {
        let ch = Arc::clone(&ch);
        let accepted_sum = Arc::clone(&accepted_sum);
        let accepted_n = Arc::clone(&accepted_n);
        joins.push(std::thread::spawn(move || {
            for i in 0..PER_SENDER {
                let v = t * PER_SENDER + i + 1;
                let f = ch.send(v);
                // A fifth of the sends try to abort mid-flight.
                if (i + t) % 5 == 0 && f.cancel() {
                    // An `Ok` here means the grant outran the cancel.
                    if let Err(e) = f.wait() {
                        assert_eq!(
                            e.into_inner(),
                            v,
                            "cancelled send returned the wrong element under seed {seed}: \
                             replay with CQS_CHAOS_SEED={seed}"
                        );
                        continue;
                    }
                } else {
                    f.wait_timeout(DEADLINE).unwrap_or_else(|_| {
                        panic!("send lost under seed {seed}: replay with CQS_CHAOS_SEED={seed}")
                    });
                }
                accepted_sum.fetch_add(v, Ordering::SeqCst);
                accepted_n.fetch_add(1, Ordering::SeqCst);
            }
        }));
    }
    for _ in 0..2 {
        let ch = Arc::clone(&ch);
        let received_sum = Arc::clone(&received_sum);
        let received_n = Arc::clone(&received_n);
        let done = Arc::clone(&done);
        joins.push(std::thread::spawn(move || loop {
            match ch.receive().wait_timeout(Duration::from_millis(2)) {
                Ok(v) => {
                    received_sum.fetch_add(v, Ordering::SeqCst);
                    received_n.fetch_add(1, Ordering::SeqCst);
                }
                Err(_) => {
                    if done.load(Ordering::SeqCst) && ch.is_empty() {
                        return;
                    }
                }
            }
        }));
    }
    // Senders were spawned first: once they are all joined, flip `done`
    // so the receivers can wind down on an empty channel.
    for (i, j) in joins.into_iter().enumerate() {
        if i == SENDERS as usize {
            done.store(true, Ordering::SeqCst);
        }
        j.join().unwrap_or_else(|_| {
            panic!("storm thread panicked under seed {seed}: replay with CQS_CHAOS_SEED={seed}")
        });
    }
    done.store(true, Ordering::SeqCst);
    (
        accepted_sum.load(Ordering::SeqCst),
        received_sum.load(Ordering::SeqCst),
        accepted_n.load(Ordering::SeqCst),
        received_n.load(Ordering::SeqCst),
    )
}

/// Send/receive/cancel storm across seeds on all three channel shapes:
/// exactly-once delivery (matching sums and counts) and, for the bounded
/// shape, full capacity back at quiescence.
#[test]
fn channel_storm_across_seeds_conserves_elements_and_slots() {
    let _serial = storm_lock().lock().unwrap();
    for seed in seeds() {
        for capacity in [Some(2usize), Some(0), None] {
            cqs_chaos::set_seed(seed);
            let ch = Arc::new(match capacity {
                Some(0) => CqsChannel::rendezvous(),
                Some(c) => CqsChannel::bounded(c),
                None => CqsChannel::unbounded(),
            });
            let (accepted_sum, received_sum, accepted_n, received_n) =
                conservation_round(Arc::clone(&ch), seed);
            assert_eq!(
                (received_sum, received_n),
                (accepted_sum, accepted_n),
                "elements lost or duplicated (capacity {capacity:?}) under seed {seed}: \
                 replay with CQS_CHAOS_SEED={seed}"
            );
            // Zero leaked capacity: a bounded channel accepts exactly
            // `capacity` immediate sends again.
            if let Some(c @ 1..) = capacity {
                let fs: Vec<_> = (0..c as u64).map(|v| ch.send(v)).collect();
                for f in &fs {
                    assert!(
                        f.is_immediate(),
                        "capacity slot leaked under seed {seed}: \
                         replay with CQS_CHAOS_SEED={seed}"
                    );
                }
                assert!(
                    !ch.send(99).is_immediate(),
                    "phantom capacity slot under seed {seed}: \
                     replay with CQS_CHAOS_SEED={seed}"
                );
            }
            cqs_chaos::disable();
        }
    }
}

/// Close racing live traffic across seeds: every element sent lands in
/// exactly one sink — a receiver, the sender's own `SendError`, or the
/// `close()`/`drain()` sweep.
#[test]
fn close_storm_across_seeds_loses_nothing() {
    let _serial = storm_lock().lock().unwrap();
    const SENDERS: u64 = 2;
    const PER_SENDER: u64 = 10;
    const TOTAL: u64 = SENDERS * PER_SENDER * (SENDERS * PER_SENDER + 1) / 2;
    for seed in seeds() {
        cqs_chaos::set_seed(seed);
        let ch = Arc::new(CqsChannel::bounded(2));
        let accepted_sum = Arc::new(AtomicU64::new(0));
        let errored_sum = Arc::new(AtomicU64::new(0));
        let delivered_sum = Arc::new(AtomicU64::new(0));
        let mut joins = Vec::new();
        for t in 0..SENDERS {
            let ch = Arc::clone(&ch);
            let accepted_sum = Arc::clone(&accepted_sum);
            let errored_sum = Arc::clone(&errored_sum);
            joins.push(std::thread::spawn(move || {
                for i in 0..PER_SENDER {
                    let v = t * PER_SENDER + i + 1;
                    match ch.send(v).wait_timeout(DEADLINE) {
                        Ok(()) => {
                            accepted_sum.fetch_add(v, Ordering::SeqCst);
                        }
                        Err(e) => {
                            errored_sum.fetch_add(e.into_inner(), Ordering::SeqCst);
                        }
                    }
                }
            }));
        }
        for _ in 0..2 {
            let ch = Arc::clone(&ch);
            let delivered_sum = Arc::clone(&delivered_sum);
            joins.push(std::thread::spawn(move || loop {
                match ch.receive().wait_timeout(Duration::from_millis(2)) {
                    Ok(v) => {
                        delivered_sum.fetch_add(v, Ordering::SeqCst);
                    }
                    Err(RecvError::Closed | RecvError::Poisoned) => return,
                    Err(RecvError::Cancelled) => {}
                }
            }));
        }
        // Close in the thick of it.
        std::thread::yield_now();
        let mut returned: u64 = ch.close().into_iter().sum();
        for j in joins {
            j.join().unwrap_or_else(|_| {
                panic!(
                    "close-storm thread panicked under seed {seed}: \
                     replay with CQS_CHAOS_SEED={seed}"
                )
            });
        }
        // Post-join: racing sends have fully landed; collect stragglers.
        returned += ch.drain().into_iter().sum::<u64>();
        let delivered = delivered_sum.load(Ordering::SeqCst);
        let errored = errored_sum.load(Ordering::SeqCst);
        let accepted = accepted_sum.load(Ordering::SeqCst);
        assert_eq!(
            delivered + returned + errored,
            TOTAL,
            "elements lost across close under seed {seed} \
             (delivered {delivered} + returned {returned} + errored {errored} != {TOTAL}): \
             replay with CQS_CHAOS_SEED={seed}"
        );
        assert_eq!(
            delivered + returned,
            accepted,
            "accepted-element ledger broken under seed {seed}: \
             replay with CQS_CHAOS_SEED={seed}"
        );
        cqs_chaos::disable();
    }
}

/// The legacy composed channel's timeout-vs-delivery window, replayed
/// under pinned seeds: the `channel.recv.timeout-window` label stretches
/// the gap between the deadline expiring and the cancel reaching the CQS,
/// so the cancel-loses-to-completion path runs deterministically. The
/// element must be returned (never dropped) and the permit released.
#[test]
fn legacy_timeout_window_replays_pinned_seeds() {
    let _serial = storm_lock().lock().unwrap();
    const CAPACITY: usize = 2;
    const ROUNDS: u64 = 30;
    // The window label only fires on the receive path; a handful of
    // pinned seeds covers both outcomes of the race.
    for seed in [0x7133_0001u64, 0x7133_0002, 0x7133_0003, 0x7133_0004] {
        cqs_chaos::set_seed(seed);
        let ch = Arc::new(Channel::new(CAPACITY));
        let received = Arc::new(AtomicU64::new(0));
        let done = Arc::new(AtomicBool::new(false));
        let receiver = {
            let ch = Arc::clone(&ch);
            let received = Arc::clone(&received);
            let done = Arc::clone(&done);
            std::thread::spawn(move || loop {
                match ch.receive().wait_timeout(Duration::from_micros(50)) {
                    Ok(v) => {
                        received.fetch_add(v, Ordering::SeqCst);
                    }
                    Err(_) => {
                        if done.load(Ordering::SeqCst) && ch.is_empty() {
                            return;
                        }
                    }
                }
            })
        };
        for v in 1..=ROUNDS {
            ch.send(v).wait().unwrap_or_else(|_| {
                panic!("send failed under seed {seed}: replay with CQS_CHAOS_SEED={seed}")
            });
        }
        done.store(true, Ordering::SeqCst);
        receiver.join().unwrap_or_else(|_| {
            panic!("receiver panicked under seed {seed}: replay with CQS_CHAOS_SEED={seed}")
        });
        assert_eq!(
            received.load(Ordering::SeqCst),
            ROUNDS * (ROUNDS + 1) / 2,
            "elements dropped in the timeout window under seed {seed}: \
             replay with CQS_CHAOS_SEED={seed}"
        );
        // Every permit is back.
        let fs: Vec<_> = (0..CAPACITY as u64).map(|v| ch.send(v)).collect();
        for f in &fs {
            assert!(
                f.is_immediate(),
                "permit leaked in the timeout window under seed {seed}: \
                 replay with CQS_CHAOS_SEED={seed}"
            );
        }
        cqs_chaos::disable();
    }
}
