//! Deterministic chaos-injection storms (run with `--features chaos`).
//!
//! With the `chaos` feature enabled, every labelled race window in the CQS
//! stack may spin, yield or sleep according to a seeded per-thread schedule
//! (see `crates/chaos`). These tests drive suspend/resume/cancel storms
//! across many fixed seeds and assert the paper's invariants hold under
//! each schedule:
//!
//! * **no lost wakeup** — every waiter is eventually resumed or cancelled
//!   (enforced with generous deadlines, so a loss fails instead of hanging);
//! * **no double resume** — never more than K holders inside a K-permit
//!   semaphore, never two threads inside a mutex;
//! * **FIFO order** — sequentially enqueued waiters are resumed in order;
//! * **segment reclamation** — a queue whose waiters all cancelled shrinks
//!   back to O(1) segments.
//!
//! Every assertion message carries the active seed, so a failure can be
//! replayed exactly with `CQS_CHAOS_SEED=<seed> cargo test --features
//! chaos <name>` (plus `--test-threads=1`, which the CI chaos job uses for
//! fully deterministic schedules).
//!
//! Without the feature, the only test in this file asserts the inverse:
//! the hooks are inert and fire zero times.

#[cfg(feature = "chaos")]
mod enabled {
    use cqs::{Cancelled, Cqs, CqsConfig, Semaphore, SimpleCancellation};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Mutex as StdMutex, OnceLock};
    use std::time::Duration;

    /// Chaos seeding is process-global; storms must not interleave their
    /// `set_seed` calls, so every test serializes on this lock.
    fn storm_lock() -> &'static StdMutex<()> {
        static LOCK: OnceLock<StdMutex<()>> = OnceLock::new();
        LOCK.get_or_init(|| StdMutex::new(()))
    }

    /// 64+ distinct, reproducible seeds (acceptance floor is 64).
    fn seeds() -> impl Iterator<Item = u64> {
        (0..72u64).map(|i| 0x5EED_0000 + i * 7919)
    }

    /// A waiter must complete within this budget or we call the wakeup
    /// lost. Far above any chaos-induced delay (sleeps are <= 100us each).
    const DEADLINE: Duration = Duration::from_secs(10);

    #[test]
    fn injection_points_actually_fire() {
        let _serial = storm_lock().lock().unwrap();
        cqs_chaos::set_seed(42);
        let before = cqs_chaos::fired_count();
        let s = Semaphore::new(1);
        s.acquire().wait().unwrap();
        let waiter = s.acquire();
        s.release();
        waiter.wait().unwrap();
        s.release();
        assert!(
            cqs_chaos::fired_count() > before,
            "no injection point fired across a suspend/resume round trip"
        );
        cqs_chaos::disable();
    }

    /// Suspend/resume/cancel storm on a 2-permit semaphore: mutual
    /// exclusion, no lost wakeups and permit conservation under every seed.
    #[test]
    fn semaphore_storm_across_seeds() {
        let _serial = storm_lock().lock().unwrap();
        const PERMITS: usize = 2;
        const THREADS: usize = 4;
        const OPS: usize = 30;
        for seed in seeds() {
            cqs_chaos::set_seed(seed);
            let s = Arc::new(Semaphore::new(PERMITS));
            let inside = Arc::new(AtomicUsize::new(0));
            let joins: Vec<_> = (0..THREADS)
                .map(|t| {
                    let s = Arc::clone(&s);
                    let inside = Arc::clone(&inside);
                    std::thread::spawn(move || {
                        for i in 0..OPS {
                            let f = s.acquire();
                            // A third of the acquisitions try to abort.
                            if (i + t) % 3 == 0 && f.cancel() {
                                continue;
                            }
                            f.wait_timeout(DEADLINE)?;
                            let now = inside.fetch_add(1, Ordering::SeqCst) + 1;
                            assert!(now <= PERMITS, "double resume: {now} > {PERMITS} holders");
                            inside.fetch_sub(1, Ordering::SeqCst);
                            s.release();
                        }
                        Ok::<(), Cancelled>(())
                    })
                })
                .collect();
            for j in joins {
                match j.join() {
                    Ok(Ok(())) => {}
                    Ok(Err(Cancelled)) => {
                        panic!("lost wakeup under seed {seed}: replay with CQS_CHAOS_SEED={seed}")
                    }
                    Err(_) => panic!(
                        "invariant violated under seed {seed}: replay with CQS_CHAOS_SEED={seed}"
                    ),
                }
            }
            assert_eq!(
                s.available_permits(),
                PERMITS,
                "permits lost under seed {seed}: replay with CQS_CHAOS_SEED={seed}"
            );
        }
        cqs_chaos::disable();
    }

    /// Sequentially enqueued waiters must be woken strictly in order, no
    /// matter how the chaos schedule stretches the resume path.
    #[test]
    fn fifo_order_across_seeds() {
        let _serial = storm_lock().lock().unwrap();
        const WAITERS: usize = 6;
        for seed in seeds() {
            cqs_chaos::set_seed(seed);
            let s = Arc::new(Semaphore::new(1));
            s.acquire().wait().unwrap();
            // Enqueue from one thread: arrival order is the program order.
            let futures: Vec<_> = (0..WAITERS).map(|_| s.acquire()).collect();
            let order = Arc::new(AtomicUsize::new(0));
            let joins: Vec<_> = futures
                .into_iter()
                .enumerate()
                .map(|(i, f)| {
                    let order = Arc::clone(&order);
                    let s = Arc::clone(&s);
                    std::thread::spawn(move || {
                        f.wait_timeout(DEADLINE).map(|()| {
                            let at = order.fetch_add(1, Ordering::SeqCst);
                            s.release();
                            (i, at)
                        })
                    })
                })
                .collect();
            s.release();
            for j in joins {
                match j.join().expect("waiter panicked") {
                    Ok((i, at)) => assert_eq!(
                        at, i,
                        "FIFO violated under seed {seed}: waiter {i} woke {at}th; \
                         replay with CQS_CHAOS_SEED={seed}"
                    ),
                    Err(Cancelled) => {
                        panic!("lost wakeup under seed {seed}: replay with CQS_CHAOS_SEED={seed}")
                    }
                }
            }
        }
        cqs_chaos::disable();
    }

    /// Mass cancellation must physically unlink fully-cancelled segments:
    /// the queue's footprint stays O(live waiters), not O(total waiters).
    #[test]
    fn cancelled_segments_reclaimed_across_seeds() {
        let _serial = storm_lock().lock().unwrap();
        const SEGMENT: usize = 4;
        const WAITERS: usize = 64;
        for seed in seeds() {
            cqs_chaos::set_seed(seed);
            let cqs: Cqs<u32, SimpleCancellation> =
                Cqs::new(CqsConfig::new().segment_size(SEGMENT), SimpleCancellation);
            let futures: Vec<_> = (0..WAITERS)
                .map(|_| cqs.suspend().expect_future())
                .collect();
            // Cancel from a second thread so handler/resume windows overlap
            // with the main thread's next suspensions.
            let canceller = std::thread::spawn(move || {
                for f in &futures {
                    assert!(f.cancel());
                }
            });
            canceller.join().unwrap();
            let live = cqs.live_segments();
            assert!(
                live <= 3,
                "{WAITERS} cancelled waiters left {live} segments linked under seed {seed} \
                 (expected <= 3): replay with CQS_CHAOS_SEED={seed}"
            );
        }
        cqs_chaos::disable();
    }

    /// Batched resumption racing suspend and cancel: one resumer pushes
    /// every value through `resume_n` while suspenders keep arriving and a
    /// third of them try to abort. The batch path must neither lose a
    /// wakeup (every non-cancelled waiter gets a value within the
    /// deadline) nor double-resume (no value delivered twice), and each
    /// value must end up in exactly one place — a waiter's hands or the
    /// resumer's failed-value vector (simple mode returns the values of
    /// cancelled cells).
    #[test]
    fn batch_resume_storm_across_seeds() {
        let _serial = storm_lock().lock().unwrap();
        const SUSPENDERS: usize = 3;
        const PER_THREAD: usize = 12;
        const K: usize = 4;
        const TOTAL: usize = SUSPENDERS * PER_THREAD; // == ROUNDS * K
        const ROUNDS: usize = TOTAL / K;
        for seed in seeds() {
            cqs_chaos::set_seed(seed);
            let cqs: Arc<Cqs<u64, SimpleCancellation>> = Arc::new(Cqs::new(
                CqsConfig::new().segment_size(4),
                SimpleCancellation,
            ));
            let seen: Arc<Vec<AtomicUsize>> =
                Arc::new((0..TOTAL).map(|_| AtomicUsize::new(0)).collect());
            let waiters: Vec<_> = (0..SUSPENDERS)
                .map(|t| {
                    let cqs = Arc::clone(&cqs);
                    let seen = Arc::clone(&seen);
                    std::thread::spawn(move || {
                        for i in 0..PER_THREAD {
                            let f = cqs.suspend().expect_future();
                            if (i + t) % 3 == 0 && f.cancel() {
                                continue;
                            }
                            let v = f.wait_timeout(DEADLINE)?;
                            let hits = seen[v as usize].fetch_add(1, Ordering::SeqCst) + 1;
                            assert_eq!(hits, 1, "value {v} delivered {hits} times");
                        }
                        Ok::<(), Cancelled>(())
                    })
                })
                .collect();
            let resumer = {
                let cqs = Arc::clone(&cqs);
                std::thread::spawn(move || {
                    let mut failed = Vec::new();
                    for round in 0..ROUNDS {
                        let base = (round * K) as u64;
                        failed.extend(cqs.resume_n(base..base + K as u64, K));
                    }
                    failed
                })
            };
            for j in waiters {
                match j.join() {
                    Ok(Ok(())) => {}
                    Ok(Err(Cancelled)) => {
                        panic!("lost wakeup under seed {seed}: replay with CQS_CHAOS_SEED={seed}")
                    }
                    Err(_) => {
                        panic!("double resume under seed {seed}: replay with CQS_CHAOS_SEED={seed}")
                    }
                }
            }
            let failed = resumer.join().expect("resumer panicked");
            for v in &failed {
                assert_eq!(
                    seen[*v as usize].load(Ordering::SeqCst),
                    0,
                    "value {v} both delivered and returned as failed under seed {seed}: \
                     replay with CQS_CHAOS_SEED={seed}"
                );
            }
            let delivered = seen
                .iter()
                .filter(|s| s.load(Ordering::SeqCst) == 1)
                .count();
            assert_eq!(
                delivered + failed.len(),
                TOTAL,
                "value conservation violated under seed {seed}: replay with \
                 CQS_CHAOS_SEED={seed}"
            );
        }
        cqs_chaos::disable();
    }

    /// `resume_all` racing `close()`: with W parked waiters, one thread
    /// broadcasts while another closes the queue. Every waiter must settle
    /// — a value from the broadcast or a cancellation from the close — and
    /// the broadcast's delivered count must match the waiters that got the
    /// value. Nobody may be stranded parked.
    #[test]
    fn batch_broadcast_vs_close_storm_across_seeds() {
        let _serial = storm_lock().lock().unwrap();
        const WAITERS: usize = 4;
        for seed in seeds() {
            cqs_chaos::set_seed(seed);
            let cqs: Arc<Cqs<u64, SimpleCancellation>> = Arc::new(Cqs::new(
                CqsConfig::new().segment_size(2),
                SimpleCancellation,
            ));
            let futures: Vec<_> = (0..WAITERS)
                .map(|_| cqs.suspend().expect_future())
                .collect();
            let joins: Vec<_> = futures
                .into_iter()
                .map(|f| std::thread::spawn(move || f.wait_timeout(DEADLINE)))
                .collect();
            let broadcaster = {
                let cqs = Arc::clone(&cqs);
                std::thread::spawn(move || cqs.resume_all(7))
            };
            let closer = {
                let cqs = Arc::clone(&cqs);
                std::thread::spawn(move || cqs.close())
            };
            let delivered = broadcaster.join().expect("broadcaster panicked");
            closer.join().expect("closer panicked");
            let got_value = joins
                .into_iter()
                .map(|j| {
                    j.join().unwrap_or_else(|_| {
                        panic!(
                            "waiter panicked under seed {seed}: replay with \
                             CQS_CHAOS_SEED={seed}"
                        )
                    })
                })
                .filter(|r| match r {
                    Ok(v) => {
                        assert_eq!(*v, 7, "wrong broadcast value under seed {seed}");
                        true
                    }
                    Err(Cancelled) => false,
                })
                .count();
            assert_eq!(
                got_value, delivered,
                "broadcast delivered {delivered} but {got_value} waiters got the value \
                 under seed {seed}: replay with CQS_CHAOS_SEED={seed}"
            );
            assert!(cqs.is_closed());
        }
        cqs_chaos::disable();
    }

    /// Close racing a storm of suspenders: every acquirer must either get a
    /// permit or an error — nobody may park forever on a closed semaphore.
    #[test]
    fn close_storm_across_seeds() {
        let _serial = storm_lock().lock().unwrap();
        for seed in seeds() {
            cqs_chaos::set_seed(seed);
            let s = Arc::new(Semaphore::new(1));
            s.acquire().wait().unwrap();
            let joins: Vec<_> = (0..3)
                .map(|_| {
                    let s = Arc::clone(&s);
                    std::thread::spawn(move || s.acquire().wait_timeout(DEADLINE))
                })
                .collect();
            let closer = {
                let s = Arc::clone(&s);
                std::thread::spawn(move || s.close())
            };
            s.release();
            closer.join().unwrap();
            let granted = joins
                .into_iter()
                .map(|j| {
                    j.join()
                        .unwrap_or_else(|_| panic!("panic under seed {seed}"))
                })
                .filter(|r| r.is_ok())
                .count();
            assert!(
                granted <= 1,
                "one released permit granted {granted} acquisitions under seed {seed}: \
                 replay with CQS_CHAOS_SEED={seed}"
            );
        }
        cqs_chaos::disable();
    }
}

#[cfg(not(feature = "chaos"))]
mod disabled {
    use cqs::Semaphore;

    /// Without the `chaos` feature `inject!` expands to nothing and the
    /// management API is inert: exercising the full suspend/resume path
    /// records zero firings.
    #[test]
    fn injection_is_inert_without_feature() {
        cqs_chaos::set_seed(1);
        assert!(!cqs_chaos::is_enabled());
        let s = Semaphore::new(1);
        s.acquire().wait().unwrap();
        let waiter = s.acquire();
        s.release();
        waiter.wait().unwrap();
        s.release();
        assert_eq!(cqs_chaos::fired_count(), 0);
    }
}
