//! Linearizability checking of chaos storms (run with `--features chaos`).
//!
//! Each test runs a small storm under seeded chaos perturbation while the
//! `cqs_chaos::record!` seam captures a per-thread invoke/response
//! history, then asks the Wing–Gong checker (`cqs_check::lin`) to find a
//! sequential order of the completed operations that a reference model
//! accepts and that respects real time. This is the executable analogue
//! of the paper's Theorem 1 (the primitives built on CQS are
//! linearizable): instead of an Iris proof over all executions, a
//! mechanical search over recorded ones.
//!
//! Invoke edges are recorded inside the primitives (`Semaphore::acquire`,
//! `RawMutex::lock`, `release`/`unlock` record both edges); response
//! edges for suspending operations are recorded here, by the harness,
//! once the returned future resolves — only the caller knows when it
//! stopped waiting or cancelled. The pool has no in-primitive seam (its
//! element type is generic), so both edges are recorded harness-side.
//!
//! The seeds are pinned so the CI `check` job replays the exact same
//! schedules every run.

#![cfg(feature = "chaos")]

use std::sync::{Arc, Mutex as StdMutex, OnceLock};
use std::time::Duration;

use std::sync::atomic::{AtomicUsize, Ordering};

use cqs::{CqsChannel, QueuePool, RawMutex, Semaphore};
use cqs_chaos::{OpEvent, OpPhase};
use cqs_check::{
    check_linearizable, pair_history, ChannelLin, FifoQueueLin, LinError, MutexLin, SemaphoreLin,
    RESP_CANCELLED, RESP_OK,
};

/// Chaos seeding and history recording are process-global; storms must
/// not interleave. (CI additionally runs this suite with
/// `--test-threads=1`.)
fn serial() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: OnceLock<StdMutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| StdMutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

/// Pinned replay seeds for the CI check job.
fn seeds() -> impl Iterator<Item = u64> {
    (0..8u64).map(|i| 0xC0DE_0000 + i * 104_729)
}

/// Far above any chaos-induced delay; a miss means a lost wakeup.
const DEADLINE: Duration = Duration::from_secs(10);

/// Runs `storm` under the given seed with recording on and returns the
/// events of the instance it names.
fn record_storm(seed: u64, instance: u64, storm: impl FnOnce()) -> Vec<OpEvent> {
    cqs_chaos::set_seed(seed);
    cqs_chaos::start_recording();
    storm();
    let events = cqs_chaos::take_history();
    cqs_chaos::disable();
    events
        .into_iter()
        .filter(|e| e.instance == instance)
        .collect()
}

/// 3 threads hammer a 2-permit semaphore, a quarter of the acquisitions
/// aborting; the completed history must linearize against the counting
/// model under every pinned seed.
#[test]
fn semaphore_storm_histories_linearize() {
    let _serial = serial();
    const PERMITS: u64 = 2;
    for seed in seeds() {
        let sem = Arc::new(Semaphore::new(PERMITS as usize));
        let id = Arc::as_ptr(&sem) as u64;
        let events = record_storm(seed, id, || {
            let joins: Vec<_> = (0..3)
                .map(|t: usize| {
                    let sem = Arc::clone(&sem);
                    std::thread::spawn(move || {
                        for round in 0..12 {
                            let f = sem.acquire(); // invoke edge recorded inside
                            if (round + t).is_multiple_of(4) && f.cancel() {
                                cqs_chaos::record(
                                    id,
                                    "sem.acquire",
                                    OpPhase::Response,
                                    RESP_CANCELLED,
                                );
                                continue;
                            }
                            f.wait_timeout(DEADLINE)
                                .unwrap_or_else(|_| panic!("lost wakeup under seed {seed:#x}"));
                            cqs_chaos::record(id, "sem.acquire", OpPhase::Response, RESP_OK);
                            sem.release(); // both edges recorded inside
                        }
                    })
                })
                .collect();
            for j in joins {
                j.join().expect("storm thread panicked");
            }
        });
        let ops = pair_history(&events)
            .unwrap_or_else(|e| panic!("unbalanced history under seed {seed:#x}: {e}"));
        assert!(
            ops.len() >= 36,
            "history too small under seed {seed:#x}: {} ops",
            ops.len()
        );
        check_linearizable(SemaphoreLin::new(PERMITS), &ops).unwrap_or_else(|e| {
            panic!("semaphore history not linearizable under seed {seed:#x}: {e}")
        });
    }
}

/// 3 threads contend on a raw mutex, a third of the lock attempts
/// aborting; the history must linearize against the lock/unlock model.
#[test]
fn mutex_storm_histories_linearize() {
    let _serial = serial();
    for seed in seeds() {
        let m = Arc::new(RawMutex::new());
        let id = Arc::as_ptr(&m) as u64;
        let events = record_storm(seed, id, || {
            let joins: Vec<_> = (0..3)
                .map(|t: usize| {
                    let m = Arc::clone(&m);
                    std::thread::spawn(move || {
                        for round in 0..10 {
                            let f = m.lock(); // invoke edge recorded inside
                            if (round + t).is_multiple_of(3) && f.cancel() {
                                cqs_chaos::record(
                                    id,
                                    "mutex.lock",
                                    OpPhase::Response,
                                    RESP_CANCELLED,
                                );
                                continue;
                            }
                            f.wait_timeout(DEADLINE)
                                .unwrap_or_else(|_| panic!("lost wakeup under seed {seed:#x}"));
                            cqs_chaos::record(id, "mutex.lock", OpPhase::Response, RESP_OK);
                            m.unlock(); // both edges recorded inside
                        }
                    })
                })
                .collect();
            for j in joins {
                j.join().expect("storm thread panicked");
            }
        });
        let ops = pair_history(&events)
            .unwrap_or_else(|e| panic!("unbalanced history under seed {seed:#x}: {e}"));
        assert!(
            ops.len() >= 30,
            "history too small under seed {seed:#x}: {} ops",
            ops.len()
        );
        check_linearizable(MutexLin::default(), &ops)
            .unwrap_or_else(|e| panic!("mutex history not linearizable under seed {seed:#x}: {e}"));
    }
}

/// One producer feeds distinct elements to a queue pool while a single
/// consumer takes; the history must linearize against the strict-FIFO
/// queue model — the fairness order the paper proves.
///
/// Like the channel storm below, this stays inside the pool's strict-FIFO
/// core: one taker (concurrent takers are ranked by suspension order, not
/// claim order) and no take cancellation — a cancelled take whose cell
/// already holds a value re-pockets it from the *cancelling* thread,
/// which can land it behind later puts. Conservation under aborts is
/// covered by the pool's own chaos tests; this storm checks the order.
#[test]
fn queue_pool_storm_histories_are_fifo_linearizable() {
    let _serial = serial();
    const TAKERS: usize = 1;
    const PER_TAKER: usize = 18;
    for seed in seeds() {
        let pool: Arc<QueuePool<u64>> = Arc::new(QueuePool::new());
        let id = Arc::as_ptr(&pool) as u64;
        let events = record_storm(seed, id, || {
            let mut joins = Vec::new();
            // The pool's element type is generic, so both edges are
            // recorded here at the harness level.
            joins.push({
                let pool = Arc::clone(&pool);
                std::thread::spawn(move || {
                    for v in 0..(TAKERS * PER_TAKER) as u64 {
                        cqs_chaos::record(id, "pool.put", OpPhase::Invoke, v);
                        pool.put(v);
                        cqs_chaos::record(id, "pool.put", OpPhase::Response, 0);
                    }
                })
            });
            for _ in 0..TAKERS {
                let pool = Arc::clone(&pool);
                joins.push(std::thread::spawn(move || {
                    for _round in 0..PER_TAKER {
                        cqs_chaos::record(id, "pool.take", OpPhase::Invoke, 0);
                        let f = pool.take();
                        let v = f
                            .wait_timeout(DEADLINE)
                            .unwrap_or_else(|_| panic!("lost wakeup under seed {seed:#x}"));
                        cqs_chaos::record(id, "pool.take", OpPhase::Response, v);
                    }
                }));
            }
            for j in joins {
                j.join().expect("storm thread panicked");
            }
        });
        let ops = pair_history(&events)
            .unwrap_or_else(|e| panic!("unbalanced history under seed {seed:#x}: {e}"));
        assert!(
            ops.len() >= TAKERS * PER_TAKER + TAKERS,
            "history too small under seed {seed:#x}: {} ops",
            ops.len()
        );
        check_linearizable(FifoQueueLin::default(), &ops)
            .unwrap_or_else(|e| panic!("pool history not linearizable under seed {seed:#x}: {e}"));
    }
}

/// One sender feeds a capacity-3 `CqsChannel` (a fifth of the sends
/// aborting mid-flight) while a single receiver drains until `close()`
/// winds it down; the history must linearize against the bounded-FIFO
/// channel model: sends respect capacity at their linearization point and
/// receives pop in head order. The channel's element type is generic, so
/// both edges are recorded harness-side, like the pool's.
///
/// The storm deliberately stays inside the channel's strict-FIFO core —
/// one sender, one receiver, no receive cancellation, close only at
/// quiescence (see "Ordering" in the `cqs-channel` crate docs; the close
/// sweep claims buffered elements one at a time, so a mid-drain close
/// would race the receiver for the buffer front — a steal the sequential
/// model cannot express). Outside that core the channel trades
/// order for conservation at three edges: concurrent receivers are
/// ranked by suspension order rather than claim order, a refused
/// hand-off re-pockets its element at the buffer tail, and a delivery
/// whose buffer insert is broken by a racing claim re-announces and
/// re-pockets at the tail, letting a concurrent sender's later element
/// slip ahead. Conservation across all three is what the chaos storms
/// check; this storm checks that the core is genuinely linearizable.
#[test]
fn channel_storm_histories_are_bounded_fifo_linearizable() {
    let _serial = serial();
    const CAPACITY: u64 = 3;
    const SENDERS: u64 = 1;
    const PER_SENDER: u64 = 24;
    for seed in seeds() {
        let ch: Arc<CqsChannel<u64>> = Arc::new(CqsChannel::bounded(CAPACITY as usize));
        let id = Arc::as_ptr(&ch) as u64;
        let accepted = Arc::new(AtomicUsize::new(0));
        let consumed = Arc::new(AtomicUsize::new(0));
        let events = record_storm(seed, id, || {
            let mut joins = Vec::new();
            for t in 0..SENDERS {
                let ch = Arc::clone(&ch);
                let accepted = Arc::clone(&accepted);
                joins.push(std::thread::spawn(move || {
                    for i in 0..PER_SENDER {
                        let v = t * PER_SENDER + i + 1;
                        cqs_chaos::record(id, "chan.send", OpPhase::Invoke, v);
                        let f = ch.send(v);
                        if (i + t).is_multiple_of(5) && f.cancel() {
                            // An `Ok` here means the grant outran the cancel.
                            if f.wait().is_err() {
                                cqs_chaos::record(
                                    id,
                                    "chan.send",
                                    OpPhase::Response,
                                    RESP_CANCELLED,
                                );
                                continue;
                            }
                        } else {
                            f.wait_timeout(DEADLINE)
                                .unwrap_or_else(|_| panic!("lost send under seed {seed:#x}"));
                        }
                        cqs_chaos::record(id, "chan.send", OpPhase::Response, RESP_OK);
                        accepted.fetch_add(1, Ordering::SeqCst);
                    }
                }));
            }
            let send_joins = joins.split_off(0);
            let mut recv_joins = Vec::new();
            for _ in 0..1 {
                let ch = Arc::clone(&ch);
                let consumed = Arc::clone(&consumed);
                recv_joins.push(std::thread::spawn(move || loop {
                    cqs_chaos::record(id, "chan.recv", OpPhase::Invoke, 0);
                    match ch.receive().wait_timeout(DEADLINE) {
                        Ok(v) => {
                            cqs_chaos::record(id, "chan.recv", OpPhase::Response, v);
                            consumed.fetch_add(1, Ordering::SeqCst);
                        }
                        Err(_) => {
                            // Woken by close() with nothing to hand over.
                            cqs_chaos::record(id, "chan.recv", OpPhase::Response, RESP_CANCELLED);
                            assert!(ch.is_closed(), "lost wakeup under seed {seed:#x}");
                            return;
                        }
                    }
                }));
            }
            for j in send_joins {
                j.join().expect("sender thread panicked");
            }
            // Quiesce before closing: the close sweep claims buffered
            // elements one at a time, so closing while the receiver still
            // drains would race it for the front of the buffer — a steal
            // the model (which has no close operation) cannot express.
            // Once the receiver has consumed everything, close() merely
            // releases it from an empty channel.
            while consumed.load(Ordering::SeqCst) < accepted.load(Ordering::SeqCst) {
                std::thread::yield_now();
            }
            let returned = ch.close();
            for j in recv_joins {
                j.join().expect("receiver thread panicked");
            }
            assert!(
                returned.is_empty(),
                "close() swept a quiescent channel under seed {seed:#x}"
            );
            assert_eq!(
                consumed.load(Ordering::SeqCst),
                accepted.load(Ordering::SeqCst),
                "elements lost under seed {seed:#x}"
            );
        });
        let ops = pair_history(&events)
            .unwrap_or_else(|e| panic!("unbalanced history under seed {seed:#x}: {e}"));
        assert!(
            ops.len() >= (SENDERS * PER_SENDER) as usize,
            "history too small under seed {seed:#x}: {} ops",
            ops.len()
        );
        check_linearizable(ChannelLin::new(Some(CAPACITY)), &ops).unwrap_or_else(|e| {
            for op in &ops {
                eprintln!("{op:?}");
            }
            panic!("channel history not linearizable under seed {seed:#x}: {e}")
        });
    }
}

/// End-to-end negative control: a hand-crafted history in which two
/// non-overlapping acquisitions both succeed on a 1-permit semaphore with
/// no release in between. The checker must reject it — proving the
/// harness can actually fail, not just vacuously accept storms.
#[test]
fn checker_rejects_an_overdrawn_history() {
    let mk = |seq, thread, phase, value| OpEvent {
        seq,
        thread,
        instance: 1,
        op: "sem.acquire",
        phase,
        value,
    };
    let events = vec![
        mk(0, 1, OpPhase::Invoke, 0),
        mk(1, 1, OpPhase::Response, RESP_OK),
        mk(2, 2, OpPhase::Invoke, 0),
        mk(3, 2, OpPhase::Response, RESP_OK),
    ];
    let ops = pair_history(&events).expect("history is balanced");
    match check_linearizable(SemaphoreLin::new(1), &ops) {
        Err(LinError::NotLinearizable { .. }) => {}
        other => panic!("overdrawn history must be rejected, got {other:?}"),
    }
}
