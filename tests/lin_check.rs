//! Linearizability checking of chaos storms (run with `--features chaos`).
//!
//! Each test runs a small storm under seeded chaos perturbation while the
//! `cqs_chaos::record!` seam captures a per-thread invoke/response
//! history, then asks the Wing–Gong checker (`cqs_check::lin`) to find a
//! sequential order of the completed operations that a reference model
//! accepts and that respects real time. This is the executable analogue
//! of the paper's Theorem 1 (the primitives built on CQS are
//! linearizable): instead of an Iris proof over all executions, a
//! mechanical search over recorded ones.
//!
//! Invoke edges are recorded inside the primitives (`Semaphore::acquire`,
//! `RawMutex::lock`, `release`/`unlock` record both edges); response
//! edges for suspending operations are recorded here, by the harness,
//! once the returned future resolves — only the caller knows when it
//! stopped waiting or cancelled. The pool has no in-primitive seam (its
//! element type is generic), so both edges are recorded harness-side.
//!
//! The seeds are pinned so the CI `check` job replays the exact same
//! schedules every run.

#![cfg(feature = "chaos")]

use std::sync::{Arc, Mutex as StdMutex, OnceLock};
use std::time::Duration;

use cqs::{QueuePool, RawMutex, Semaphore};
use cqs_chaos::{OpEvent, OpPhase};
use cqs_check::{
    check_linearizable, pair_history, FifoQueueLin, LinError, MutexLin, SemaphoreLin,
    RESP_CANCELLED, RESP_OK,
};

/// Chaos seeding and history recording are process-global; storms must
/// not interleave. (CI additionally runs this suite with
/// `--test-threads=1`.)
fn serial() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: OnceLock<StdMutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| StdMutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

/// Pinned replay seeds for the CI check job.
fn seeds() -> impl Iterator<Item = u64> {
    (0..8u64).map(|i| 0xC0DE_0000 + i * 104_729)
}

/// Far above any chaos-induced delay; a miss means a lost wakeup.
const DEADLINE: Duration = Duration::from_secs(10);

/// Runs `storm` under the given seed with recording on and returns the
/// events of the instance it names.
fn record_storm(seed: u64, instance: u64, storm: impl FnOnce()) -> Vec<OpEvent> {
    cqs_chaos::set_seed(seed);
    cqs_chaos::start_recording();
    storm();
    let events = cqs_chaos::take_history();
    cqs_chaos::disable();
    events
        .into_iter()
        .filter(|e| e.instance == instance)
        .collect()
}

/// 3 threads hammer a 2-permit semaphore, a quarter of the acquisitions
/// aborting; the completed history must linearize against the counting
/// model under every pinned seed.
#[test]
fn semaphore_storm_histories_linearize() {
    let _serial = serial();
    const PERMITS: u64 = 2;
    for seed in seeds() {
        let sem = Arc::new(Semaphore::new(PERMITS as usize));
        let id = Arc::as_ptr(&sem) as u64;
        let events = record_storm(seed, id, || {
            let joins: Vec<_> = (0..3)
                .map(|t: usize| {
                    let sem = Arc::clone(&sem);
                    std::thread::spawn(move || {
                        for round in 0..12 {
                            let f = sem.acquire(); // invoke edge recorded inside
                            if (round + t).is_multiple_of(4) && f.cancel() {
                                cqs_chaos::record(
                                    id,
                                    "sem.acquire",
                                    OpPhase::Response,
                                    RESP_CANCELLED,
                                );
                                continue;
                            }
                            f.wait_timeout(DEADLINE)
                                .unwrap_or_else(|_| panic!("lost wakeup under seed {seed:#x}"));
                            cqs_chaos::record(id, "sem.acquire", OpPhase::Response, RESP_OK);
                            sem.release(); // both edges recorded inside
                        }
                    })
                })
                .collect();
            for j in joins {
                j.join().expect("storm thread panicked");
            }
        });
        let ops = pair_history(&events)
            .unwrap_or_else(|e| panic!("unbalanced history under seed {seed:#x}: {e}"));
        assert!(
            ops.len() >= 36,
            "history too small under seed {seed:#x}: {} ops",
            ops.len()
        );
        check_linearizable(SemaphoreLin::new(PERMITS), &ops).unwrap_or_else(|e| {
            panic!("semaphore history not linearizable under seed {seed:#x}: {e}")
        });
    }
}

/// 3 threads contend on a raw mutex, a third of the lock attempts
/// aborting; the history must linearize against the lock/unlock model.
#[test]
fn mutex_storm_histories_linearize() {
    let _serial = serial();
    for seed in seeds() {
        let m = Arc::new(RawMutex::new());
        let id = Arc::as_ptr(&m) as u64;
        let events = record_storm(seed, id, || {
            let joins: Vec<_> = (0..3)
                .map(|t: usize| {
                    let m = Arc::clone(&m);
                    std::thread::spawn(move || {
                        for round in 0..10 {
                            let f = m.lock(); // invoke edge recorded inside
                            if (round + t).is_multiple_of(3) && f.cancel() {
                                cqs_chaos::record(
                                    id,
                                    "mutex.lock",
                                    OpPhase::Response,
                                    RESP_CANCELLED,
                                );
                                continue;
                            }
                            f.wait_timeout(DEADLINE)
                                .unwrap_or_else(|_| panic!("lost wakeup under seed {seed:#x}"));
                            cqs_chaos::record(id, "mutex.lock", OpPhase::Response, RESP_OK);
                            m.unlock(); // both edges recorded inside
                        }
                    })
                })
                .collect();
            for j in joins {
                j.join().expect("storm thread panicked");
            }
        });
        let ops = pair_history(&events)
            .unwrap_or_else(|e| panic!("unbalanced history under seed {seed:#x}: {e}"));
        assert!(
            ops.len() >= 30,
            "history too small under seed {seed:#x}: {} ops",
            ops.len()
        );
        check_linearizable(MutexLin::default(), &ops)
            .unwrap_or_else(|e| panic!("mutex history not linearizable under seed {seed:#x}: {e}"));
    }
}

/// One producer feeds distinct elements to a queue pool while two
/// consumers take (some aborting); the history must linearize against the
/// strict-FIFO queue model — the fairness order the paper proves.
#[test]
fn queue_pool_storm_histories_are_fifo_linearizable() {
    let _serial = serial();
    const TAKERS: usize = 2;
    const PER_TAKER: usize = 9;
    for seed in seeds() {
        let pool: Arc<QueuePool<u64>> = Arc::new(QueuePool::new());
        let id = Arc::as_ptr(&pool) as u64;
        let events = record_storm(seed, id, || {
            let mut joins = Vec::new();
            // The pool's element type is generic, so both edges are
            // recorded here at the harness level.
            joins.push({
                let pool = Arc::clone(&pool);
                std::thread::spawn(move || {
                    for v in 0..(TAKERS * PER_TAKER) as u64 {
                        cqs_chaos::record(id, "pool.put", OpPhase::Invoke, v);
                        pool.put(v);
                        cqs_chaos::record(id, "pool.put", OpPhase::Response, 0);
                    }
                })
            });
            for t in 0..TAKERS {
                let pool = Arc::clone(&pool);
                joins.push(std::thread::spawn(move || {
                    for round in 0..PER_TAKER {
                        cqs_chaos::record(id, "pool.take", OpPhase::Invoke, 0);
                        let f = pool.take();
                        if (round + t).is_multiple_of(4) && f.cancel() {
                            cqs_chaos::record(id, "pool.take", OpPhase::Response, RESP_CANCELLED);
                            continue;
                        }
                        let v = f
                            .wait_timeout(DEADLINE)
                            .unwrap_or_else(|_| panic!("lost wakeup under seed {seed:#x}"));
                        cqs_chaos::record(id, "pool.take", OpPhase::Response, v);
                    }
                }));
            }
            for j in joins {
                j.join().expect("storm thread panicked");
            }
        });
        let ops = pair_history(&events)
            .unwrap_or_else(|e| panic!("unbalanced history under seed {seed:#x}: {e}"));
        assert!(
            ops.len() >= TAKERS * PER_TAKER + TAKERS,
            "history too small under seed {seed:#x}: {} ops",
            ops.len()
        );
        check_linearizable(FifoQueueLin::default(), &ops)
            .unwrap_or_else(|e| panic!("pool history not linearizable under seed {seed:#x}: {e}"));
    }
}

/// End-to-end negative control: a hand-crafted history in which two
/// non-overlapping acquisitions both succeed on a 1-permit semaphore with
/// no release in between. The checker must reject it — proving the
/// harness can actually fail, not just vacuously accept storms.
#[test]
fn checker_rejects_an_overdrawn_history() {
    let mk = |seq, thread, phase, value| OpEvent {
        seq,
        thread,
        instance: 1,
        op: "sem.acquire",
        phase,
        value,
    };
    let events = vec![
        mk(0, 1, OpPhase::Invoke, 0),
        mk(1, 1, OpPhase::Response, RESP_OK),
        mk(2, 2, OpPhase::Invoke, 0),
        mk(3, 2, OpPhase::Response, RESP_OK),
    ];
    let ops = pair_history(&events).expect("history is balanced");
    match check_linearizable(SemaphoreLin::new(1), &ops) {
        Err(LinError::NotLinearizable { .. }) => {}
        other => panic!("overdrawn history must be rejected, got {other:?}"),
    }
}
