//! Edge cases of the batched resumption paths: the `WakeBatch` heap
//! spill past its inline capacity (with FIFO firing order preserved),
//! and the degenerate `resume_n(.., 0)` / empty-queue `resume_all`
//! calls, which must be complete no-ops — no counter movement, no claims,
//! no stray wake-ups.

use std::sync::{Arc, Mutex};

use cqs::{Cqs, CqsConfig, FutureState, SimpleCancellation};
use cqs_future::{wake_batch_spill_count, WAKE_BATCH_INLINE};

fn cqs() -> Cqs<u64, SimpleCancellation> {
    Cqs::new(CqsConfig::new().segment_size(4), SimpleCancellation)
}

/// More waiters than the inline wake capacity in a single `resume_n`: the
/// batch must spill to the heap (observable through the process-wide
/// spill counter) and still fire every deferred wake in FIFO order.
#[test]
fn resume_n_past_inline_capacity_spills_and_fires_fifo() {
    const N: usize = WAKE_BATCH_INLINE + 4; // 12 waiters, inline is 8
    let cqs = cqs();
    let mut futures: Vec<_> = (0..N).map(|_| cqs.suspend().expect_future()).collect();
    let order: Arc<Mutex<Vec<usize>>> = Arc::default();
    for (i, f) in futures.iter().enumerate() {
        let order = Arc::clone(&order);
        f.on_ready(move || order.lock().unwrap().push(i));
    }
    let before = wake_batch_spill_count();
    let failed = cqs.resume_n(0..N as u64, N);
    assert!(failed.is_empty(), "no cell was cancelled: {failed:?}");
    assert!(
        wake_batch_spill_count() > before,
        "a {N}-wake batch must spill past the {WAKE_BATCH_INLINE}-slot inline capacity"
    );
    assert_eq!(
        *order.lock().unwrap(),
        (0..N).collect::<Vec<_>>(),
        "deferred wakes must fire in FIFO (cell) order across the spill boundary"
    );
    for (i, f) in futures.iter_mut().enumerate() {
        assert_eq!(f.try_get(), FutureState::Ready(i as u64), "waiter {i}");
    }
}

/// `resume_n(values, 0)` is a no-op: nothing claimed, nothing delivered,
/// no counters advanced, and a parked waiter stays untouched (no stray
/// wake).
#[test]
fn resume_n_zero_is_a_noop() {
    let cqs = cqs();
    let mut parked = cqs.suspend().expect_future();
    let resumes = cqs.resume_count();
    let completed = cqs.completed_resumes();
    let spills = wake_batch_spill_count();

    let failed = cqs.resume_n(std::iter::empty(), 0);

    assert!(failed.is_empty());
    assert_eq!(cqs.resume_count(), resumes, "resume counter moved");
    assert_eq!(
        cqs.completed_resumes(),
        completed,
        "completion counter moved"
    );
    assert_eq!(wake_batch_spill_count(), spills, "a zero-batch spilled");
    assert_eq!(
        parked.try_get(),
        FutureState::Pending,
        "the parked waiter must not be woken by an empty batch"
    );
    assert!(parked.cancel());
}

/// `resume_all` on a queue with no waiters delivers nothing and claims
/// nothing: the counters stay put and the next suspender finds an empty
/// cell (no value was parked by the broadcast).
#[test]
fn resume_all_on_empty_queue_is_a_noop() {
    let cqs = cqs();
    let resumes = cqs.resume_count();
    let completed = cqs.completed_resumes();

    assert_eq!(cqs.resume_all(42), 0, "nothing to deliver");

    assert_eq!(cqs.resume_count(), resumes, "resume counter moved");
    assert_eq!(
        cqs.completed_resumes(),
        completed,
        "completion counter moved"
    );
    let mut f = cqs.suspend().expect_future();
    assert_eq!(
        f.try_get(),
        FutureState::Pending,
        "an empty broadcast must not park a value for future suspenders"
    );
    assert!(f.cancel());
}

/// `resume_all` over a span whose waiters all cancelled: zero deliveries,
/// and the broadcast still consumes the span (the next suspender starts
/// on a fresh cell, not a stale cancelled one).
#[test]
fn resume_all_over_cancelled_span_delivers_nothing() {
    let cqs = cqs();
    let f1 = cqs.suspend().expect_future();
    let f2 = cqs.suspend().expect_future();
    assert!(f1.cancel());
    assert!(f2.cancel());

    assert_eq!(cqs.resume_all(42), 0, "cancelled waiters get nothing");

    let mut f = cqs.suspend().expect_future();
    assert_eq!(f.try_get(), FutureState::Pending);
    assert!(f.cancel());
}
