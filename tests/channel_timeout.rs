//! `send_timeout` / `receive_timeout` convenience API and the
//! timeout-vs-delivery race they expose.
//!
//! The functional half runs featureless. The `chaos`-gated half replays a
//! pinned-seed family through the rendezvous handoff, where the dangerous
//! window lives: a receiver abandoning its wait (timeout → cancel) racing
//! a sender committing delivery into the same cell. The regression
//! contract is *agreement* — exactly one of {delivered, returned} per
//! element, never both (duplication) and never neither (loss).

use cqs::{CqsChannel, RecvError, SendError};
use std::sync::Arc;
use std::time::{Duration, Instant};

const DEADLINE: Duration = Duration::from_secs(10);

#[test]
fn receive_timeout_expires_then_delivers() {
    let ch: CqsChannel<u32> = CqsChannel::bounded(2);
    let start = Instant::now();
    assert_eq!(
        ch.receive_timeout(Duration::from_millis(30)),
        Err(RecvError::Cancelled),
        "empty channel must time out"
    );
    assert!(start.elapsed() >= Duration::from_millis(30));
    ch.send(7).wait().unwrap();
    assert_eq!(ch.receive_timeout(DEADLINE), Ok(7));
}

#[test]
fn send_timeout_expires_with_the_element_returned() {
    let ch: CqsChannel<u32> = CqsChannel::bounded(1);
    ch.send(1).wait().unwrap(); // fill the buffer
    match ch.send_timeout(2, Duration::from_millis(30)) {
        Err(SendError::Cancelled(v)) => assert_eq!(v, 2, "element must come back"),
        other => panic!("full channel must time out, got {other:?}"),
    }
    // Conservation: the timed-out element is gone from the channel; the
    // buffered one is intact.
    assert_eq!(ch.receive_timeout(DEADLINE), Ok(1));
    assert_eq!(
        ch.receive_timeout(Duration::from_millis(20)),
        Err(RecvError::Cancelled)
    );
    // With the buffer free again the same element goes through.
    ch.send_timeout(2, DEADLINE).unwrap();
    assert_eq!(ch.receive_timeout(DEADLINE), Ok(2));
}

#[test]
fn timeouts_on_a_closed_channel_fail_fast() {
    let ch: CqsChannel<u32> = CqsChannel::bounded(1);
    ch.close();
    let start = Instant::now();
    match ch.send_timeout(1, DEADLINE) {
        Err(SendError::Closed(v)) => assert_eq!(v, 1),
        other => panic!("expected Closed, got {other:?}"),
    }
    assert_eq!(ch.receive_timeout(DEADLINE), Err(RecvError::Closed));
    assert!(
        start.elapsed() < Duration::from_secs(2),
        "closed-channel timeouts must not wait out their deadline"
    );
}

/// The featureless race: a rendezvous receiver abandoning at its deadline
/// vs a sender arriving around the same instant. Either the handoff
/// happened (both sides agree Ok) or it did not (receiver timed out *and*
/// the sender got its element back).
#[test]
fn rendezvous_timeout_vs_delivery_agree() {
    for round in 0..32u64 {
        let ch: Arc<CqsChannel<u64>> = Arc::new(CqsChannel::rendezvous());
        let receiver = {
            let ch = Arc::clone(&ch);
            std::thread::spawn(move || ch.receive_timeout(Duration::from_millis(2)))
        };
        std::thread::sleep(Duration::from_micros(500 * (round % 5)));
        let sent = ch.send_timeout(round, Duration::from_millis(20));
        let received = receiver.join().unwrap();
        match (received, sent) {
            (Ok(v), Ok(())) => assert_eq!(v, round, "handoff delivered the wrong element"),
            (Err(RecvError::Cancelled), Err(SendError::Cancelled(v))) => {
                assert_eq!(v, round, "abandoned handoff must return the element")
            }
            (r, s) => panic!("round {round}: sides disagree — receiver {r:?}, sender {s:?}"),
        }
        assert!(
            ch.close().is_empty(),
            "round {round}: rendezvous buffered an element"
        );
    }
}

/// Pinned-seed regression: the same race under the chaos scheduler's
/// seeded delays, which push the cancel/deliver interleaving through the
/// labelled windows in both orders. Replay a failure with
/// `CQS_CHAOS_SEED=<seed>`.
#[cfg(feature = "chaos")]
mod chaos_race {
    use super::*;

    #[test]
    fn seeded_timeout_vs_delivery_race_conserves_elements() {
        for i in 0..72u64 {
            let seed = 0x71E0_0000 + i * 7919;
            cqs_chaos::set_seed(seed);
            let ch: Arc<CqsChannel<u64>> = Arc::new(CqsChannel::rendezvous());
            let receiver = {
                let ch = Arc::clone(&ch);
                std::thread::spawn(move || ch.receive_timeout(Duration::from_millis(1 + i % 4)))
            };
            let sent = ch.send_timeout(i, Duration::from_millis(25));
            let received = receiver.join().unwrap();
            match (received, sent) {
                (Ok(v), Ok(())) => {
                    assert_eq!(v, i, "seed {seed:#x}: wrong element delivered")
                }
                (Err(RecvError::Cancelled), Err(SendError::Cancelled(v))) => {
                    assert_eq!(v, i, "seed {seed:#x}: element not returned")
                }
                (r, s) => panic!(
                    "seed {seed:#x}: duplication or loss — receiver {r:?}, sender {s:?} \
                     (replay with CQS_CHAOS_SEED={seed})"
                ),
            }
            assert!(
                ch.close().is_empty(),
                "seed {seed:#x}: rendezvous channel buffered an element"
            );
            cqs_chaos::disable();
        }
    }
}
