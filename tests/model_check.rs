//! Offline model checking of the cell state machine (run with
//! `--features chaos`).
//!
//! Where `tests/chaos_injection.rs` *samples* the schedule space with 72
//! random seeds, these tests *exhaust* a bounded slice of it: small 2–3
//! thread `suspend`/`resume`/`cancel`/`close`/`resume_n` programs run
//! under the `cqs_check::Explorer`, which serializes execution, treats
//! every `cqs_chaos::inject!` labelled race window as a schedule point,
//! and enumerates all interleavings depth-first up to a CHESS-style
//! preemption bound. A failing schedule is reported as a replayable
//! decision trace (see `Explorer::replay`).
//!
//! Each program encodes one protocol obligation from the paper's Iris
//! specification:
//!
//! * **no lost wakeup** — a suspend racing a resume always hands the value
//!   over (elimination or completion, Figure 5's `EMPTY`/`VALUE` corner);
//! * **exactly-once delivery** — two resumes racing one suspend deliver
//!   each value exactly once;
//! * **cancellation vs. resumption** — the smart-cancellation
//!   `CANCELLED`/`REFUSE` decision conserves the semaphore permit in every
//!   interleaving (Listing 5's cancellation handler);
//! * **close vs. broadcast** — `close()` racing `resume_all` strands
//!   nobody: every waiter settles with the value or a cancellation;
//! * **mid-batch cancellation** — a waiter cancelling while `resume_n`
//!   traverses either gets its value or the batch reports it failed,
//!   never both, and its neighbours are unaffected;
//! * **sharded handoff vs. cancellation** — for both the sharded
//!   semaphore and the sharded pool, a cancellation voiding a same-shard
//!   handoff (deregistering before the release's/put's `fetch_add`, or
//!   refusing its in-flight resume) never strands a waiter parked on a
//!   sibling shard next to the re-banked permit/element;
//! * **synchronous resume vs. cancellation** — with `spin_limit(0)` the
//!   rendezvous race resolves exactly-once: the waiter takes the value or
//!   the resume fails and keeps it, never both, never neither;
//! * **segment retire vs. concurrent traversal** — for each reclamation
//!   backend, a cancellation unlinking (and retiring) a whole segment
//!   while a resume traverses past it never loses the resume's value.
//!
//! With `--features "chaos planted-bug"` the permit-conservation program
//! is required to *fail* instead: the planted `REFUSE -> CANCELLED` swap
//! in `cqs-core` manufactures a phantom permit, and the test asserts the
//! explorer finds it and that the recorded trace replays to the same
//! violation.

#![cfg(feature = "chaos")]

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex as StdMutex, OnceLock};

use cqs::{
    Cqs, CqsChannel, CqsConfig, CqsFuture, FutureState, ReclaimerKind, ResumeMode, Semaphore,
    ShardedQueuePool, ShardedSemaphore, SimpleCancellation,
};
use cqs_check::{Explorer, Program};

/// The explorer installs a process-global `cqs_chaos` scheduler; tests
/// must not overlap. (The CI check job additionally runs with
/// `--test-threads=1`.)
fn serial() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: OnceLock<StdMutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| StdMutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

/// The CI-pinned exploration budget: at most 2 preemptions, the
/// documented bound for these suites.
fn explorer() -> Explorer {
    Explorer {
        preemption_bound: 2,
        ..Explorer::default()
    }
}

type Slot = Arc<StdMutex<Option<CqsFuture<u64>>>>;

fn take(slot: &Slot, who: &str) -> Result<CqsFuture<u64>, String> {
    slot.lock()
        .unwrap_or_else(|e| e.into_inner())
        .take()
        .ok_or_else(|| format!("{who}: future was never stored"))
}

fn expect_ready(f: &mut CqsFuture<u64>, want: u64, who: &str) -> Result<(), String> {
    match f.try_get() {
        FutureState::Ready(v) if v == want => Ok(()),
        other => Err(format!("{who}: expected Ready({want}), got {other:?}")),
    }
}

/// T1 suspends while T2 resumes with a value: in every interleaving the
/// value reaches the waiter — by completion (waiter installed first) or by
/// elimination (value parked first) — and the resume itself succeeds.
#[test]
fn suspend_vs_resume_never_loses_the_wakeup() {
    let _serial = serial();
    let exploration = explorer().check_exhaustive(|| {
        let cqs: Arc<Cqs<u64, SimpleCancellation>> = Arc::new(Cqs::new(
            CqsConfig::new().segment_size(2),
            SimpleCancellation,
        ));
        let slot: Slot = Arc::default();
        let resumed = Arc::new(AtomicBool::new(false));
        Program::new()
            .thread({
                let (cqs, slot) = (Arc::clone(&cqs), Arc::clone(&slot));
                move || {
                    let f = cqs.suspend().expect_future();
                    *slot.lock().unwrap() = Some(f);
                }
            })
            .thread({
                let (cqs, resumed) = (Arc::clone(&cqs), Arc::clone(&resumed));
                move || {
                    resumed.store(cqs.resume(7).is_ok(), Ordering::SeqCst);
                }
            })
            .check(move || {
                if !resumed.load(Ordering::SeqCst) {
                    return Err("resume(7) failed although no cell was cancelled".into());
                }
                let mut f = take(&slot, "suspender")?;
                expect_ready(&mut f, 7, "waiter")
            })
    });
    assert!(
        exploration.runs >= 2,
        "a 2-thread race must need more than one schedule, ran {}",
        exploration.runs
    );
}

/// One suspender, two resumers: every interleaving delivers each value
/// exactly once — the waiter gets one of the two values and the other is
/// parked for the *next* suspender (observed via an immediate elimination).
#[test]
fn racing_resumes_deliver_each_value_exactly_once() {
    let _serial = serial();
    explorer().check_exhaustive(|| {
        let cqs: Arc<Cqs<u64, SimpleCancellation>> = Arc::new(Cqs::new(
            CqsConfig::new().segment_size(2),
            SimpleCancellation,
        ));
        let slot: Slot = Arc::default();
        let ok = [
            Arc::new(AtomicBool::new(false)),
            Arc::new(AtomicBool::new(false)),
        ];
        let mut program = Program::new().thread({
            let (cqs, slot) = (Arc::clone(&cqs), Arc::clone(&slot));
            move || {
                let f = cqs.suspend().expect_future();
                *slot.lock().unwrap() = Some(f);
            }
        });
        for (i, flag) in ok.iter().enumerate() {
            let (cqs, flag) = (Arc::clone(&cqs), Arc::clone(flag));
            program = program.thread(move || {
                flag.store(cqs.resume(i as u64 + 1).is_ok(), Ordering::SeqCst);
            });
        }
        program.check(move || {
            for (i, flag) in ok.iter().enumerate() {
                if !flag.load(Ordering::SeqCst) {
                    return Err(format!("resume({}) failed with no cancellations", i + 1));
                }
            }
            let mut f = take(&slot, "suspender")?;
            let first = match f.try_get() {
                FutureState::Ready(v @ (1 | 2)) => v,
                other => return Err(format!("waiter: expected Ready(1|2), got {other:?}")),
            };
            // The losing value must be parked in the next cell, ready to
            // eliminate with the next suspender — delivered once, not
            // dropped, not duplicated.
            let mut next = cqs.suspend().expect_future();
            expect_ready(&mut next, 3 - first, "second suspender (parked value)")
        })
    });
}

/// Builds the permit-conservation program checked below (and required to
/// fail under `--features planted-bug`): a 1-permit semaphore whose permit
/// is held, T1 acquires-then-cancels, T2 releases. Afterwards exactly one
/// permit must exist — one fresh acquire succeeds, a second stays pending.
///
/// The dangerous corner is the paper's Listing 5 `REFUSE` transition: when
/// the cancellation loses to an in-flight `release`, `on_cancellation`
/// banks the permit in the state counter and the cell must turn `REFUSE`
/// so the resumer's value dies with it. The planted bug writes `CANCELLED`
/// instead, making the resumer park a *second* (phantom) permit in the
/// next cell — which only a genuinely suspending acquire can observe.
fn permit_conservation_program() -> Program {
    let sem = Arc::new(Semaphore::new(1));
    let held = sem.acquire();
    assert!(held.is_immediate(), "setup: the single permit must be free");
    let slot: Arc<StdMutex<Option<CqsFuture<()>>>> = Arc::default();
    let cancelled = Arc::new(AtomicBool::new(false));
    Program::new()
        .thread({
            let (sem, slot, cancelled) =
                (Arc::clone(&sem), Arc::clone(&slot), Arc::clone(&cancelled));
            move || {
                let f = sem.acquire();
                cancelled.store(f.cancel(), Ordering::SeqCst);
                *slot.lock().unwrap() = Some(f);
            }
        })
        .thread({
            let sem = Arc::clone(&sem);
            move || sem.release()
        })
        .check(move || {
            let mut f = slot
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .take()
                .ok_or("acquirer: future was never stored")?;
            match (cancelled.load(Ordering::SeqCst), f.try_get()) {
                (true, FutureState::Cancelled) => {}
                (false, FutureState::Ready(())) => sem.release(), // waiter got it; put it back
                (c, other) => {
                    return Err(format!("acquirer: cancel()=={c} but future is {other:?}"))
                }
            }
            // Exactly one permit must remain, wherever the race put it.
            let mut g1 = sem.acquire();
            match g1.try_get() {
                FutureState::Ready(()) => {}
                other => return Err(format!("permit lost: first re-acquire got {other:?}")),
            }
            let g2 = sem.acquire();
            if g2.is_immediate() {
                return Err(
                    "phantom permit: a second acquisition succeeded after one release".into(),
                );
            }
            assert!(g2.cancel(), "cleanup: pending waiter must cancel");
            Ok(())
        })
}

/// In every interleaving of cancel vs. release, the semaphore ends up
/// with exactly one permit: the `CANCELLED`/`REFUSE` decision never loses
/// the permit and never mints a second one.
#[cfg(not(feature = "planted-bug"))]
#[test]
fn cancel_vs_release_conserves_the_permit() {
    let _serial = serial();
    explorer().check_exhaustive(permit_conservation_program);
}

/// With the planted `REFUSE -> CANCELLED` swap compiled in, the same
/// bounded exploration must *catch* the protocol violation — and the
/// decision trace it reports must replay to the same failure. This is the
/// CI proof that the explorer detects real cell-state-machine bugs rather
/// than vacuously passing.
#[cfg(feature = "planted-bug")]
#[test]
fn explorer_catches_the_planted_refuse_bug() {
    let _serial = serial();
    let exploration = explorer().explore(permit_conservation_program);
    let cex = exploration
        .counterexample
        .expect("the planted REFUSE bug must be caught within 2 preemptions");
    assert!(
        !cex.trace.steps.is_empty(),
        "counterexample must carry a replayable decision trace"
    );
    let err = explorer()
        .replay(permit_conservation_program, &cex.trace.choices())
        .expect_err("replaying the recorded schedule must reproduce the failure");
    assert_eq!(err, cex.error, "replay must reproduce the same violation");
}

/// `close()` racing `resume_all(9)` with two parked waiters: nobody is
/// left pending — each waiter observes the broadcast value or a
/// cancellation, and the broadcast's delivered count matches exactly the
/// waiters that got the value.
#[test]
fn close_vs_resume_all_strands_nobody() {
    let _serial = serial();
    explorer().check_exhaustive(|| {
        let cqs: Arc<Cqs<u64, SimpleCancellation>> = Arc::new(Cqs::new(
            CqsConfig::new().segment_size(2),
            SimpleCancellation,
        ));
        let mut waiters: Vec<CqsFuture<u64>> = (0..2)
            .map(|_| cqs.suspend().expect_future())
            .collect();
        let delivered = Arc::new(StdMutex::new(0usize));
        Program::new()
            .thread({
                let (cqs, delivered) = (Arc::clone(&cqs), Arc::clone(&delivered));
                move || {
                    *delivered.lock().unwrap() = cqs.resume_all(9);
                }
            })
            .thread({
                let cqs = Arc::clone(&cqs);
                move || cqs.close()
            })
            .check(move || {
                let delivered = *delivered.lock().unwrap_or_else(|e| e.into_inner());
                let mut got_value = 0usize;
                for (i, f) in waiters.iter_mut().enumerate() {
                    match f.try_get() {
                        FutureState::Ready(9) => got_value += 1,
                        FutureState::Cancelled => {}
                        other => {
                            return Err(format!("waiter {i}: stranded with {other:?}"));
                        }
                    }
                }
                if got_value != delivered {
                    return Err(format!(
                        "broadcast claims {delivered} deliveries but {got_value} waiters got the value"
                    ));
                }
                Ok(())
            })
    });
}

/// The channel's smart-cancellation corner, exhaustively: T1 receives and
/// immediately cancels, T2 sends into a capacity-1 `CqsChannel`. In every
/// interleaving the element survives (delivered to the receiver if the
/// cancel lost, re-routed into the buffer if it won) and the capacity
/// ledger balances to exactly one slot — no lost element, no leaked slot,
/// no phantom slot.
#[test]
fn channel_receive_cancel_vs_send_conserves_element_and_slot() {
    let _serial = serial();
    explorer().check_exhaustive(|| {
        let ch: Arc<CqsChannel<u64>> = Arc::new(CqsChannel::bounded(1));
        let recv_slot: Arc<StdMutex<Option<cqs::ChannelRecv<u64>>>> = Arc::default();
        let cancel_won = Arc::new(AtomicBool::new(false));
        Program::new()
            .thread({
                let (ch, recv_slot, cancel_won) = (
                    Arc::clone(&ch),
                    Arc::clone(&recv_slot),
                    Arc::clone(&cancel_won),
                );
                move || {
                    let r = ch.receive();
                    cancel_won.store(r.cancel(), Ordering::SeqCst);
                    *recv_slot.lock().unwrap() = Some(r);
                }
            })
            .thread({
                let ch = Arc::clone(&ch);
                move || {
                    // Capacity 1, channel empty: the send is always
                    // immediate (threads must not park under the explorer).
                    assert!(ch.send(5).is_immediate());
                }
            })
            .check(move || {
                let mut r = recv_slot
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .take()
                    .ok_or("receiver: future was never stored")?;
                match (cancel_won.load(Ordering::SeqCst), r.try_get()) {
                    (false, FutureState::Ready(5)) => {}
                    (true, FutureState::Cancelled) => {
                        // The element must have been re-routed into the
                        // buffer (deregistered or refused — either way it
                        // is not lost).
                        let mut r2 = ch.receive();
                        if !r2.is_immediate() {
                            return Err("element lost: cancel won but buffer is empty".into());
                        }
                        match r2.try_get() {
                            FutureState::Ready(5) => {}
                            other => return Err(format!("re-routed element: got {other:?}")),
                        }
                    }
                    (won, other) => {
                        return Err(format!("receiver: cancel()=={won} but future is {other:?}"))
                    }
                }
                // Exactly one capacity slot must exist, wherever the race
                // put it: one send is immediate, a second must block.
                let f1 = ch.send(6);
                if !f1.is_immediate() {
                    return Err("slot lost: a send on an empty channel blocked".into());
                }
                let f2 = ch.send(7);
                if f2.is_immediate() {
                    return Err("phantom slot: two immediate sends at capacity 1".into());
                }
                if !f2.cancel() {
                    return Err("cleanup: the blocked send must cancel".into());
                }
                let mut r3 = ch.receive();
                match r3.try_get() {
                    FutureState::Ready(6) => Ok(()),
                    other => Err(format!("cleanup receive: got {other:?}")),
                }
            })
    });
}

/// Sweeps a 1-permit sharded semaphore after a race settled: exactly one
/// permit must exist across both shards — one probe acquire succeeds
/// immediately, a second stays pending (and is cancelled for cleanup).
fn assert_one_sharded_permit(sem: &ShardedSemaphore) -> Result<(), String> {
    let mut p1 = sem.acquire_at(0);
    match p1.try_get() {
        FutureState::Ready(()) => {}
        other => return Err(format!("permit lost: probe acquire got {other:?}")),
    }
    let p2 = sem.acquire_at(0);
    if p2.is_immediate() {
        return Err("phantom permit: two immediate acquires on one permit".into());
    }
    assert!(p2.cancel(), "cleanup: pending probe must cancel");
    Ok(())
}

/// Cross-shard steal racing a local fast path, exhaustively: a 2-shard
/// semaphore whose single permit is banked on shard 1, with T1 acquiring
/// through shard 0 (it must *steal* across the `sharded.steal.window`
/// schedule points) and T2 acquiring locally on shard 1. In every
/// interleaving exactly one of them obtains the permit and the total never
/// leaves 1 — the steal CAS and the local CAS can race but not double-pay.
#[test]
fn sharded_steal_vs_local_acquire_conserves_the_permit() {
    let _serial = serial();
    let exploration = explorer().check_exhaustive(|| {
        let sem = Arc::new(ShardedSemaphore::with_shards(1, 2));
        // Move the permit to shard 1: drain shard 0's share, then return
        // it through shard 1 (no waiters anywhere, so it banks there).
        let drained = sem.acquire_at(0);
        assert!(drained.is_immediate(), "setup: shard 0 holds the permit");
        sem.release_at(1);
        let slots: [Slot2; 2] = [Arc::default(), Arc::default()];
        Program::new()
            .thread({
                let (sem, slot) = (Arc::clone(&sem), Arc::clone(&slots[0]));
                move || {
                    *slot.lock().unwrap() = Some(sem.acquire_at(0)); // stealer
                }
            })
            .thread({
                let (sem, slot) = (Arc::clone(&sem), Arc::clone(&slots[1]));
                move || {
                    *slot.lock().unwrap() = Some(sem.acquire_at(1)); // local
                }
            })
            .check(move || {
                // Settle the losers *before* returning any permit: a
                // release would (correctly) migrate to a still-parked
                // waiter via the quiescence sweep and blur the tally.
                let mut winners = Vec::new();
                for (i, slot) in slots.iter().enumerate() {
                    let mut f = slot
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .take()
                        .ok_or_else(|| format!("acquirer {i}: future never stored"))?;
                    match f.try_get() {
                        FutureState::Ready(()) => winners.push(i),
                        FutureState::Pending => {
                            if !f.cancel() {
                                return Err(format!(
                                    "acquirer {i}: cancel of a pending waiter lost \
                                     with no release in flight"
                                ));
                            }
                        }
                        other => return Err(format!("acquirer {i}: got {other:?}")),
                    }
                }
                let [winner] = winners[..] else {
                    return Err(format!("{} acquirers won a single permit", winners.len()));
                };
                sem.release_at(winner);
                assert_one_sharded_permit(&sem)
            })
    });
    assert!(
        exploration.runs >= 2,
        "the steal window must branch the schedule, ran {}",
        exploration.runs
    );
}

/// The release-time sibling scan racing the waiter's cancellation: the
/// single permit is held through shard 0 while a waiter parks on shard 1;
/// T1 cancels the waiter while T2 releases at shard 0, whose quiescence
/// sweep crosses the `sharded.rebalance.window` to feed shard 1. In every
/// interleaving the cancel and the migrated permit resolve exactly-once:
/// the waiter ends Ready with the permit or Cancelled with the permit
/// banked — never both, never neither (no lost wakeup, no phantom).
#[test]
fn sharded_release_scan_vs_cancel_is_exactly_once() {
    let _serial = serial();
    explorer().check_exhaustive(|| {
        let sem = Arc::new(ShardedSemaphore::with_shards(1, 2));
        let held = sem.acquire_at(0);
        assert!(held.is_immediate(), "setup: the permit starts held");
        let waiter = sem.acquire_at(1);
        assert!(!waiter.is_immediate(), "setup: the waiter must park");
        let waiter = Arc::new(StdMutex::new(Some(waiter)));
        let cancelled = Arc::new(AtomicBool::new(false));
        Program::new()
            .thread({
                let (waiter, cancelled) = (Arc::clone(&waiter), Arc::clone(&cancelled));
                move || {
                    let w = waiter.lock().unwrap();
                    cancelled.store(
                        w.as_ref().expect("setup stored it").cancel(),
                        Ordering::SeqCst,
                    );
                }
            })
            .thread({
                let sem = Arc::clone(&sem);
                move || sem.release_at(0)
            })
            .check(move || {
                let mut w = waiter
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .take()
                    .ok_or("waiter: future never stored")?;
                match (cancelled.load(Ordering::SeqCst), w.try_get()) {
                    (true, FutureState::Cancelled) => {} // permit banked somewhere
                    (false, FutureState::Ready(())) => sem.release_at(1), // waiter got it
                    (c, other) => {
                        return Err(format!("waiter: cancel()=={c} but future is {other:?}"))
                    }
                }
                assert_one_sharded_permit(&sem)
            })
    });
}

/// The *same-shard* sibling of the program above — the lost-wakeup corner
/// the `release_at` handoff path owns: the single permit is held through
/// shard 0, one waiter parks on shard 0 (the release's own shard) and a
/// second on shard 1. T1 cancels the shard-0 waiter while T2 releases at
/// shard 0. If the cancel voids the handoff — by deregistering before the
/// release's `fetch_add`, or by refusing the in-flight resume afterwards
/// (which re-banks the permit via `on_cancellation`) — the permit banks
/// at shard 0 with no holder anywhere, and the release must still sweep
/// it to the shard-1 waiter. A `waiting()`-snapshot-guided early return
/// strands that waiter forever; the fix decides banked-vs-served from the
/// release's own `fetch_add` and runs the quiescence sweep on both paths.
#[test]
fn sharded_same_shard_cancel_vs_release_handoff_loses_no_wakeup() {
    let _serial = serial();
    explorer().check_exhaustive(|| {
        let sem = Arc::new(ShardedSemaphore::with_shards(1, 2));
        let held = sem.acquire_at(0);
        assert!(held.is_immediate(), "setup: the permit starts held");
        let local = sem.acquire_at(0);
        assert!(!local.is_immediate(), "setup: the shard-0 waiter must park");
        let mut remote = sem.acquire_at(1);
        assert!(
            !remote.is_immediate(),
            "setup: the shard-1 waiter must park"
        );
        let local = Arc::new(StdMutex::new(Some(local)));
        let cancelled = Arc::new(AtomicBool::new(false));
        Program::new()
            .thread({
                let (local, cancelled) = (Arc::clone(&local), Arc::clone(&cancelled));
                move || {
                    let w = local.lock().unwrap();
                    cancelled.store(
                        w.as_ref().expect("setup stored it").cancel(),
                        Ordering::SeqCst,
                    );
                }
            })
            .thread({
                let sem = Arc::clone(&sem);
                move || sem.release_at(0)
            })
            .check(move || {
                let mut w = local
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .take()
                    .ok_or("local waiter: future never stored")?;
                match (cancelled.load(Ordering::SeqCst), w.try_get()) {
                    (true, FutureState::Cancelled) => {
                        // The handoff was voided; the permit must have
                        // reached the shard-1 waiter — a banked permit
                        // next to a parked waiter is the lost wakeup this
                        // program exists to rule out.
                        match remote.try_get() {
                            FutureState::Ready(()) => sem.release_at(1),
                            other => {
                                return Err(format!(
                                    "lost wakeup: local waiter cancelled but the \
                                     shard-1 waiter is {other:?}"
                                ))
                            }
                        }
                    }
                    (false, FutureState::Ready(())) => {
                        // The local waiter won the permit; the shard-1
                        // waiter stays parked and must cancel cleanly.
                        if !remote.cancel() {
                            return Err(
                                "shard-1 waiter: cancel lost with no release in flight".into()
                            );
                        }
                        sem.release_at(0);
                    }
                    (c, other) => {
                        return Err(format!(
                            "local waiter: cancel()=={c} but future is {other:?}"
                        ))
                    }
                }
                assert_one_sharded_permit(&sem)
            })
    });
}

/// The pool mirror of the program above: two takers park (one per shard),
/// T1 cancels the shard-0 taker while T2 puts through shard 0. If the
/// cancel voids the handoff the element is *stored* at shard 0 — and
/// unlike semaphore credit, a stored element has no future release coming
/// — so the put must migrate it to the shard-1 taker in every
/// interleaving (including the refusal one, where `complete_refused_resume`
/// re-stores the element after the put's resume already committed).
#[test]
fn sharded_pool_same_shard_cancel_vs_put_loses_no_wakeup() {
    let _serial = serial();
    explorer().check_exhaustive(|| {
        let pool: Arc<ShardedQueuePool<u64>> = Arc::new(ShardedQueuePool::with_shards(2));
        let local = pool.take_at(0);
        assert!(!local.is_immediate(), "setup: the shard-0 taker must park");
        let mut remote = pool.take_at(1);
        assert!(!remote.is_immediate(), "setup: the shard-1 taker must park");
        let local = Arc::new(StdMutex::new(Some(local)));
        let cancelled = Arc::new(AtomicBool::new(false));
        Program::new()
            .thread({
                let (local, cancelled) = (Arc::clone(&local), Arc::clone(&cancelled));
                move || {
                    let t = local.lock().unwrap();
                    cancelled.store(
                        t.as_ref().expect("setup stored it").cancel(),
                        Ordering::SeqCst,
                    );
                }
            })
            .thread({
                let pool = Arc::clone(&pool);
                move || pool.put_at(0, 42)
            })
            .check(move || {
                let mut t = local
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .take()
                    .ok_or("local taker: future never stored")?;
                match (cancelled.load(Ordering::SeqCst), t.try_get()) {
                    (true, FutureState::Cancelled) => {
                        // The handoff was voided; the element must have
                        // migrated to the shard-1 taker instead of idling
                        // in shard 0's store.
                        match remote.try_get() {
                            FutureState::Ready(42) => pool.put_at(1, 42),
                            other => {
                                return Err(format!(
                                    "lost wakeup: local taker cancelled but the \
                                     shard-1 taker is {other:?}"
                                ))
                            }
                        }
                    }
                    (false, FutureState::Ready(42)) => {
                        if !remote.cancel() {
                            return Err("shard-1 taker: cancel lost with no put in flight".into());
                        }
                        pool.put_at(0, 42);
                    }
                    (c, other) => {
                        return Err(format!(
                            "local taker: cancel()=={c} but future is {other:?}"
                        ))
                    }
                }
                // Exactly one element must exist, wherever the race put it.
                let mut probe = pool.take_at(0);
                match probe.try_get() {
                    FutureState::Ready(42) => {}
                    other => return Err(format!("element lost: probe take got {other:?}")),
                }
                let second = pool.take_at(0);
                if second.is_immediate() {
                    return Err("phantom element: two immediate takes of one element".into());
                }
                assert!(second.cancel(), "cleanup: pending probe must cancel");
                Ok(())
            })
    });
}

type Slot2 = Arc<StdMutex<Option<CqsFuture<()>>>>;

/// A waiter cancelling in the middle of a `resume_n` batch: value 2
/// either reaches waiter 1 or comes back in the batch's failed-value
/// vector — never both, never neither — while waiters 0 and 2 always get
/// their values (simple mode consumes a value per claimed cell).
#[test]
fn mid_batch_cancellation_is_exactly_once() {
    let _serial = serial();
    explorer().check_exhaustive(|| {
        let cqs: Arc<Cqs<u64, SimpleCancellation>> = Arc::new(Cqs::new(
            CqsConfig::new().segment_size(2),
            SimpleCancellation,
        ));
        let mut fs: Vec<CqsFuture<u64>> = (0..3)
            .map(|_| cqs.suspend().expect_future())
            .collect();
        let target = fs.remove(1);
        let target = Arc::new(StdMutex::new(Some(target)));
        let won = Arc::new(AtomicBool::new(false));
        let failed = Arc::new(StdMutex::new(Vec::new()));
        Program::new()
            .thread({
                let (cqs, failed) = (Arc::clone(&cqs), Arc::clone(&failed));
                move || {
                    *failed.lock().unwrap() = cqs.resume_n([1u64, 2, 3], 3);
                }
            })
            .thread({
                let (target, won) = (Arc::clone(&target), Arc::clone(&won));
                move || {
                    let t = target.lock().unwrap();
                    won.store(t.as_ref().expect("setup stored it").cancel(), Ordering::SeqCst);
                }
            })
            .check(move || {
                expect_ready(&mut fs[0], 1, "waiter 0")?;
                expect_ready(&mut fs[1], 3, "waiter 2")?;
                let mut t = take(&target, "cancelled waiter")?;
                let failed = failed.lock().unwrap_or_else(|e| e.into_inner()).clone();
                match (won.load(Ordering::SeqCst), t.try_get()) {
                    (true, FutureState::Cancelled) => {
                        if failed != [2] {
                            return Err(format!(
                                "cancel won but batch reported failed values {failed:?}, expected [2]"
                            ));
                        }
                    }
                    (true, other) => {
                        return Err(format!("cancel won but waiter 1 observes {other:?}"))
                    }
                    (false, FutureState::Ready(2)) => {
                        if !failed.is_empty() {
                            return Err(format!(
                                "value 2 both delivered and reported failed: {failed:?}"
                            ));
                        }
                    }
                    (false, other) => {
                        return Err(format!("cancel lost but waiter 1 observes {other:?}"))
                    }
                }
                Ok(())
            })
    });
}

/// The synchronous-resumption rendezvous racing a cancellation,
/// exhaustively. `spin_limit(0)` removes the resumer's wait loop, so the
/// rendezvous is decided purely by the cell state machine — the corner
/// where a stale wakeup or a double-delivery would hide. In every
/// interleaving exactly one side wins and the value is conserved: either
/// the waiter observes `Ready(7)` (and the cancel reports failure), or the
/// cancel succeeds and the resume returns `Err(7)` — the value stays with
/// the resumer, never delivered into a cancelled cell, never dropped.
#[test]
fn sync_mode_resume_vs_cancel_is_exactly_once() {
    let _serial = serial();
    let exploration = explorer().check_exhaustive(|| {
        let cqs: Arc<Cqs<u64, SimpleCancellation>> = Arc::new(Cqs::new(
            CqsConfig::new()
                .resume_mode(ResumeMode::Synchronous)
                .spin_limit(0)
                .segment_size(2),
            SimpleCancellation,
        ));
        let waiter = cqs.suspend().expect_future();
        assert!(!waiter.is_immediate(), "setup: the waiter must park");
        let waiter = Arc::new(StdMutex::new(Some(waiter)));
        let cancelled = Arc::new(AtomicBool::new(false));
        let resume_ok = Arc::new(AtomicBool::new(false));
        Program::new()
            .thread({
                let (waiter, cancelled) = (Arc::clone(&waiter), Arc::clone(&cancelled));
                move || {
                    let w = waiter.lock().unwrap();
                    cancelled.store(
                        w.as_ref().expect("setup stored it").cancel(),
                        Ordering::SeqCst,
                    );
                }
            })
            .thread({
                let (cqs, resume_ok) = (Arc::clone(&cqs), Arc::clone(&resume_ok));
                move || {
                    resume_ok.store(cqs.resume(7).is_ok(), Ordering::SeqCst);
                }
            })
            .check(move || {
                let mut w = take(&waiter, "waiter")?;
                let (cancelled, resume_ok) = (
                    cancelled.load(Ordering::SeqCst),
                    resume_ok.load(Ordering::SeqCst),
                );
                match (cancelled, resume_ok, w.try_get()) {
                    // Cancel won; the resume kept its value.
                    (true, false, FutureState::Cancelled) => Ok(()),
                    // Rendezvous completed; the cancel reported failure.
                    (false, true, FutureState::Ready(7)) => Ok(()),
                    (c, r, other) => Err(format!(
                        "exactly-once violated: cancel()=={c}, resume.is_ok()=={r}, \
                         waiter observes {other:?}"
                    )),
                }
            })
    });
    assert!(
        exploration.runs >= 2,
        "the rendezvous race must branch the schedule, ran {}",
        exploration.runs
    );
}

/// Segment retirement racing a resume traversal, once per reclamation
/// backend. With `segment_size(1)` each waiter owns a segment and
/// `freelist_slots(0)` forces an unlinked segment through the backend's
/// retire path (`epoch.defer.pre-bin` / `reclaim.hazard.retire.pre-scan` /
/// `reclaim.owned.retire.pre-scan` — each a schedule point under the
/// explorer). T1 cancels waiter 0, unlinking its segment mid-race, while
/// T2 resumes 9 and must traverse past that segment: in every
/// interleaving the value lands exactly once — on waiter 0 if the resume
/// beat the cancel, on waiter 1 if the retire won — and the traversal
/// never touches freed memory (the explorer runs every schedule, so a
/// use-after-free on the unlink window would crash the exploration).
#[test]
fn segment_retire_vs_resume_traversal_loses_no_value() {
    for kind in ReclaimerKind::ALL {
        let _serial = serial();
        explorer().check_exhaustive(move || {
            let cqs: Arc<Cqs<u64, SimpleCancellation>> = Arc::new(Cqs::new(
                CqsConfig::new()
                    .segment_size(1)
                    .freelist_slots(0)
                    .reclaimer(kind),
                SimpleCancellation,
            ));
            let f0 = cqs.suspend().expect_future();
            let mut f1 = cqs.suspend().expect_future();
            assert!(
                !f0.is_immediate() && !f1.is_immediate(),
                "setup: both waiters must park"
            );
            let f0 = Arc::new(StdMutex::new(Some(f0)));
            let cancelled = Arc::new(AtomicBool::new(false));
            Program::new()
                .thread({
                    let (f0, cancelled) = (Arc::clone(&f0), Arc::clone(&cancelled));
                    move || {
                        let f = f0.lock().unwrap();
                        cancelled.store(
                            f.as_ref().expect("setup stored it").cancel(),
                            Ordering::SeqCst,
                        );
                    }
                })
                .thread({
                    let cqs = Arc::clone(&cqs);
                    move || {
                        // Simple mode: a resume hitting the cancelled cell
                        // bounces the value; retry walks to the next cell.
                        let mut v = 9;
                        while let Err(bounced) = cqs.resume(v) {
                            v = bounced;
                        }
                    }
                })
                .check(move || {
                    let mut f0 = take(&f0, "waiter 0")?;
                    match (cancelled.load(Ordering::SeqCst), f0.try_get()) {
                        (true, FutureState::Cancelled) => {
                            // The retire won; the traversal must have
                            // carried the value past the unlinked segment.
                            expect_ready(&mut f1, 9, &format!("[{kind}] waiter 1"))
                        }
                        (false, FutureState::Ready(9)) => {
                            if !f1.cancel() {
                                return Err(format!(
                                    "[{kind}] waiter 1: cancel of a pending waiter lost"
                                ));
                            }
                            Ok(())
                        }
                        (c, other) => Err(format!(
                            "[{kind}] waiter 0: cancel()=={c} but future is {other:?}"
                        )),
                    }
                })
        });
    }
}
