//! Watchdog-under-chaos: run with `--features "watch chaos"`.
//!
//! A pinned-seed chaos storm stretches every labelled race window in the
//! stack while the deadlock scanner watches. The storm is deadlock-free by
//! construction (no thread ever holds two locks at once), so any
//! [`ReportKind::Deadlock`] would be a false positive born from a racy
//! wait-graph snapshot — the confirmation pass must filter them all. A
//! genuinely stuck waiter (a permit that is never released), by contrast,
//! must still be caught and named while the storm rages on.

#![cfg(all(feature = "watch", feature = "chaos"))]

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use cqs::watch::{ReportKind, Scanner, WatchConfig};
use cqs::{Mutex, Semaphore};

/// Pinned seed: the same schedule CI uses (`CQS_CHAOS_SEED` in ci.yml).
const SEED: u64 = 1_198_211_584;

#[test]
fn watchdog_no_false_deadlocks_under_chaos_but_catches_real_stall() {
    cqs_chaos::set_seed(SEED);

    // A real stall, planted before the storm: the only permit is taken and
    // never released, so the waiter below can never proceed.
    let stuck_sem = Arc::new(Semaphore::new(1));
    stuck_sem.acquire().wait().unwrap();
    let mut scanner = Scanner::new(
        WatchConfig::new()
            .stall_threshold(Duration::from_millis(200))
            .confirm_cycle_scans(2),
    );
    let stuck2 = Arc::clone(&stuck_sem);
    let stuck_waiter = std::thread::spawn(move || stuck2.acquire().wait());

    // The storm: every thread interleaves two mutexes and a semaphore but
    // always releases one primitive before touching the next, so the
    // wait-for graph cannot contain a cycle no matter the schedule.
    const THREADS: usize = 4;
    const OPS: usize = 150;
    let lock_a = Arc::new(Mutex::new(0u64));
    let lock_b = Arc::new(Mutex::new(0u64));
    let sem = Arc::new(Semaphore::new(2));
    let storm: Vec<_> = (0..THREADS)
        .map(|t| {
            let lock_a = Arc::clone(&lock_a);
            let lock_b = Arc::clone(&lock_b);
            let sem = Arc::clone(&sem);
            std::thread::spawn(move || {
                for i in 0..OPS {
                    match (t + i) % 3 {
                        0 => *lock_a.lock().unwrap() += 1,
                        1 => *lock_b.lock().unwrap() += 1,
                        _ => {
                            sem.acquire().wait().unwrap();
                            std::hint::black_box(i);
                            sem.release();
                        }
                    }
                }
            })
        })
        .collect();

    // Scan continuously while the storm runs and until the stall surfaces.
    let storm_alive = Arc::new(AtomicBool::new(true));
    let mut deadlock_reports = 0usize;
    let mut stall_named_stuck_sem = false;
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        for report in scanner.scan() {
            match report.kind {
                ReportKind::Deadlock => deadlock_reports += 1,
                ReportKind::Stall => {
                    if report
                        .stalled
                        .iter()
                        .any(|w| w.primitive == stuck_sem.watch_id())
                    {
                        stall_named_stuck_sem = true;
                    }
                }
            }
        }
        if !storm_alive.load(Ordering::SeqCst) && stall_named_stuck_sem {
            break;
        }
        if storm_alive.load(Ordering::SeqCst) && storm.iter().all(|j| j.is_finished()) {
            storm_alive.store(false, Ordering::SeqCst);
        }
        assert!(
            Instant::now() < deadline,
            "storm or stall detection did not finish in time \
             (seed {SEED}, stall seen: {stall_named_stuck_sem})"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    for j in storm {
        j.join().unwrap();
    }

    assert_eq!(
        deadlock_reports, 0,
        "chaos snapshots must never be confirmed into deadlocks (seed {SEED})"
    );
    assert!(stall_named_stuck_sem);

    // Sanity: the storm actually ran under chaos and nothing was lost.
    assert!(cqs_chaos::fired_count() > 0, "chaos never fired");
    let mutations = *lock_a.lock().unwrap() + *lock_b.lock().unwrap();
    assert_eq!(mutations as usize, {
        // Each (t, i) pair with (t + i) % 3 != 2 increments one counter.
        (0..THREADS)
            .flat_map(|t| (0..OPS).map(move |i| (t + i) % 3))
            .filter(|r| *r != 2)
            .count()
    });

    // Unstick the planted waiter and restore quiet for other tests.
    stuck_sem.release();
    stuck_waiter.join().unwrap().unwrap();
    cqs_chaos::disable();
}
