//! Integration tests for the extension primitives built beyond the paper's
//! listings: the fair readers–writer lock (§7 future work) and the bounded
//! channel composed from semaphore + pool.

use std::sync::atomic::{AtomicI64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use cqs::{Channel, RawRwLock};

#[test]
fn rwlock_phase_fair_alternation() {
    // Writers and readers alternate: with a continuous stream of readers, a
    // writer still gets in (no writer starvation), and vice versa.
    let lock = Arc::new(RawRwLock::new());
    let writer_ran = Arc::new(AtomicUsize::new(0));
    let stop = Arc::new(AtomicUsize::new(0));

    let readers: Vec<_> = (0..3)
        .map(|_| {
            let lock = Arc::clone(&lock);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                while stop.load(Ordering::SeqCst) == 0 {
                    lock.read().wait().unwrap();
                    std::hint::black_box(0u64);
                    lock.read_unlock();
                }
            })
        })
        .collect();

    let writer = {
        let lock = Arc::clone(&lock);
        let writer_ran = Arc::clone(&writer_ran);
        std::thread::spawn(move || {
            for _ in 0..50 {
                lock.write().wait().unwrap();
                writer_ran.fetch_add(1, Ordering::SeqCst);
                lock.write_unlock();
            }
        })
    };

    writer.join().unwrap();
    assert_eq!(
        writer_ran.load(Ordering::SeqCst),
        50,
        "writer starved by readers"
    );
    stop.store(1, Ordering::SeqCst);
    for r in readers {
        r.join().unwrap();
    }
}

#[test]
fn rwlock_mixed_invariant_long() {
    const THREADS: usize = 6;
    const OPS: usize = 2_000;
    let lock = Arc::new(RawRwLock::new());
    let occupancy = Arc::new(AtomicI64::new(0)); // readers > 0, writer = -1
    let mut joins = Vec::new();
    for t in 0..THREADS {
        let lock = Arc::clone(&lock);
        let occupancy = Arc::clone(&occupancy);
        joins.push(std::thread::spawn(move || {
            for i in 0..OPS {
                if (t * 31 + i) % 5 == 0 {
                    lock.write().wait().unwrap();
                    assert_eq!(occupancy.swap(-1, Ordering::SeqCst), 0);
                    occupancy.store(0, Ordering::SeqCst);
                    lock.write_unlock();
                } else {
                    lock.read().wait().unwrap();
                    assert!(occupancy.fetch_add(1, Ordering::SeqCst) >= 0);
                    occupancy.fetch_sub(1, Ordering::SeqCst);
                    lock.read_unlock();
                }
            }
        }));
    }
    for j in joins {
        j.join().unwrap();
    }
    assert_eq!(lock.observed_state(), (0, false));
}

#[test]
fn channel_backpressure_bounds_buffer() {
    let ch = Arc::new(Channel::new(2));
    ch.send(1u32).wait().unwrap();
    ch.send(2).wait().unwrap();
    let blocked = ch.send(3);
    assert!(!blocked.is_immediate(), "capacity must be enforced");
    assert!(ch.len() <= 2);
    assert_eq!(ch.receive().wait(), Ok(1));
    blocked.wait().unwrap();
    assert_eq!(ch.receive().wait(), Ok(2));
    assert_eq!(ch.receive().wait(), Ok(3));
}

#[test]
fn channel_pipeline_through_threads() {
    const STAGES: usize = 3;
    const ITEMS: u64 = 2_000;
    let channels: Vec<Arc<Channel<u64>>> =
        (0..=STAGES).map(|_| Arc::new(Channel::new(4))).collect();

    let mut joins = Vec::new();
    for stage in 0..STAGES {
        let input = Arc::clone(&channels[stage]);
        let output = Arc::clone(&channels[stage + 1]);
        joins.push(std::thread::spawn(move || {
            for _ in 0..ITEMS {
                let v = input.receive().wait().unwrap();
                output.send(v + 1).wait().unwrap();
            }
        }));
    }
    let first = Arc::clone(&channels[0]);
    let feeder = std::thread::spawn(move || {
        for v in 0..ITEMS {
            first.send(v).wait().unwrap();
        }
    });

    let last = Arc::clone(&channels[STAGES]);
    let mut sum = 0u64;
    for _ in 0..ITEMS {
        sum += last.receive().wait().unwrap();
    }
    feeder.join().unwrap();
    for j in joins {
        j.join().unwrap();
    }
    // Each item passed through 3 incrementing stages.
    assert_eq!(sum, (0..ITEMS).map(|v| v + STAGES as u64).sum::<u64>());
}

#[test]
fn channel_receive_timeout_leaves_channel_intact() {
    let ch: Channel<u32> = Channel::new(4);
    for _ in 0..5 {
        assert!(ch.receive().wait_timeout(Duration::from_millis(5)).is_err());
    }
    ch.send(7).wait().unwrap();
    assert_eq!(ch.receive().wait(), Ok(7));
    assert!(ch.is_empty());
}

#[test]
fn rwlock_async_integration() {
    use std::task::{Context, Poll, Wake};
    struct W(std::thread::Thread);
    impl Wake for W {
        fn wake(self: Arc<Self>) {
            self.0.unpark();
        }
    }
    fn block_on<F: std::future::Future>(mut f: F) -> F::Output {
        let waker = Arc::new(W(std::thread::current())).into();
        let mut cx = Context::from_waker(&waker);
        // SAFETY: stack-pinned, not moved afterwards.
        let mut f = unsafe { std::pin::Pin::new_unchecked(&mut f) };
        loop {
            match f.as_mut().poll(&mut cx) {
                Poll::Ready(v) => return v,
                Poll::Pending => std::thread::park(),
            }
        }
    }

    let lock = Arc::new(RawRwLock::new());
    lock.write().wait().unwrap();
    let l2 = Arc::clone(&lock);
    let unlocker = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(20));
        l2.write_unlock();
    });
    block_on(async {
        lock.read().await.unwrap();
    });
    unlocker.join().unwrap();
    lock.read_unlock();
}
