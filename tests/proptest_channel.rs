//! Property-based test for the bounded channel: random single-threaded
//! send/receive/cancel sequences against a FIFO reference model with
//! capacity-based backpressure.

use std::collections::VecDeque;

use proptest::prelude::*;

use cqs::{Channel, Receive, SendFuture};

#[derive(Debug, Clone)]
enum Op {
    Send(u64),
    Receive,
    CancelReceive(usize),
}

fn ops() -> impl Strategy<Value = (usize, Vec<Op>)> {
    (1usize..5).prop_flat_map(|capacity| {
        (
            Just(capacity),
            prop::collection::vec(
                prop_oneof![
                    3 => (0u64..1_000).prop_map(Op::Send),
                    3 => Just(Op::Receive),
                    1 => (0usize..16).prop_map(Op::CancelReceive),
                ],
                0..80,
            ),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn channel_matches_fifo_model((capacity, ops) in ops()) {
        let channel: Channel<u64> = Channel::new(capacity);
        // Model: elements in flight (buffered or owned by a blocked send),
        // FIFO; receivers waiting, FIFO; blocked sends, FIFO.
        let mut in_flight: VecDeque<u64> = VecDeque::new();
        let mut waiting_receivers: VecDeque<usize> = VecDeque::new();
        let mut pending_receives: Vec<(usize, Receive<u64>)> = Vec::new();
        let mut blocked_sends: Vec<SendFuture<u64>> = Vec::new();
        let mut next_receiver = 0usize;

        for op in ops {
            match op {
                Op::Send(v) => {
                    let f = channel.send(v);
                    if let Some(id) = waiting_receivers.pop_front() {
                        // Hand-off to the first waiting receiver.
                        prop_assert!(f.is_immediate());
                        let idx = pending_receives
                            .iter()
                            .position(|(i, _)| *i == id)
                            .expect("waiting receiver must be tracked");
                        let (_, r) = pending_receives.remove(idx);
                        prop_assert_eq!(r.wait(), Ok(v));
                    } else if in_flight.len() < capacity {
                        prop_assert!(f.is_immediate());
                        in_flight.push_back(v);
                    } else {
                        prop_assert!(!f.is_immediate(), "capacity must block");
                        in_flight.push_back(v);
                        blocked_sends.push(f);
                    }
                }
                Op::Receive => {
                    let r = channel.receive();
                    if let Some(v) = in_flight.pop_front() {
                        prop_assert_eq!(r.wait(), Ok(v));
                        // Removing an element may unblock the oldest send.
                        if in_flight.len() >= capacity && !blocked_sends.is_empty() {
                            let f = blocked_sends.remove(0);
                            prop_assert!(f.wait().is_ok());
                        }
                    } else {
                        waiting_receivers.push_back(next_receiver);
                        pending_receives.push((next_receiver, r));
                        next_receiver += 1;
                    }
                }
                Op::CancelReceive(k) => {
                    if pending_receives.is_empty() {
                        continue;
                    }
                    let (id, r) = pending_receives.remove(k % pending_receives.len());
                    prop_assert!(r.cancel());
                    waiting_receivers.retain(|w| *w != id);
                }
            }
        }

        // Drain: every in-flight element arrives in order.
        for v in in_flight {
            prop_assert_eq!(channel.receive().wait(), Ok(v));
        }
        // All blocked sends are now unblocked.
        for f in blocked_sends {
            prop_assert!(f.wait().is_ok());
        }
    }
}
