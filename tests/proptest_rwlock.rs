//! Property-based test for the readers–writer lock: random single-threaded
//! operation sequences against a reference model of the phase-fair policy.

use std::collections::VecDeque;

use proptest::prelude::*;

use cqs::{RawRwLock, RwLockFuture};

#[derive(Debug, Clone)]
enum Op {
    Read,
    Write,
    ReadUnlock,
    WriteUnlock,
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            3 => Just(Op::Read),
            2 => Just(Op::Write),
            3 => Just(Op::ReadUnlock),
            2 => Just(Op::WriteUnlock),
        ],
        0..120,
    )
}

/// Reference model of the lock's policy, mirroring the documented
/// transitions (not the implementation's bit packing).
#[derive(Debug, Default)]
struct Model {
    active_readers: usize,
    writer_active: bool,
    waiting_readers: usize,
    /// FIFO ids of waiting writers.
    waiting_writers: VecDeque<usize>,
}

#[derive(Debug, PartialEq)]
enum Granted {
    Immediate,
    Queued,
}

impl Model {
    fn read(&mut self) -> Granted {
        if self.writer_active || !self.waiting_writers.is_empty() {
            self.waiting_readers += 1;
            Granted::Queued
        } else {
            self.active_readers += 1;
            Granted::Immediate
        }
    }

    fn write(&mut self, id: usize) -> Granted {
        if !self.writer_active && self.active_readers == 0 && self.waiting_writers.is_empty() {
            self.writer_active = true;
            Granted::Immediate
        } else {
            self.waiting_writers.push_back(id);
            Granted::Queued
        }
    }

    /// Returns the granted parties: `(readers_released, writer_released)`.
    fn read_unlock(&mut self) -> (usize, Option<usize>) {
        assert!(self.active_readers > 0);
        self.active_readers -= 1;
        if self.active_readers == 0 && !self.waiting_writers.is_empty() {
            let w = self.waiting_writers.pop_front().unwrap();
            self.writer_active = true;
            (0, Some(w))
        } else {
            (0, None)
        }
    }

    fn write_unlock(&mut self) -> (usize, Option<usize>) {
        assert!(self.writer_active);
        self.writer_active = false;
        if self.waiting_readers > 0 {
            let batch = self.waiting_readers;
            self.active_readers = batch;
            self.waiting_readers = 0;
            (batch, None)
        } else if let Some(w) = self.waiting_writers.pop_front() {
            self.writer_active = true;
            (0, Some(w))
        } else {
            (0, None)
        }
    }
}

fn assert_ready(f: RwLockFuture) {
    // A granted future must complete without any further event.
    f.wait().unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn rwlock_matches_policy_model(ops in ops()) {
        let lock = RawRwLock::new();
        let mut model = Model::default();
        let mut queued_readers: Vec<RwLockFuture> = Vec::new();
        let mut queued_writers: Vec<(usize, RwLockFuture)> = Vec::new();
        let mut next_writer_id = 0usize;

        for op in ops {
            match op {
                Op::Read => {
                    let f = lock.read();
                    match model.read() {
                        Granted::Immediate => {
                            prop_assert!(f.is_immediate());
                            assert_ready(f);
                        }
                        Granted::Queued => {
                            prop_assert!(!f.is_immediate());
                            queued_readers.push(f);
                        }
                    }
                }
                Op::Write => {
                    let f = lock.write();
                    let id = next_writer_id;
                    next_writer_id += 1;
                    match model.write(id) {
                        Granted::Immediate => {
                            prop_assert!(f.is_immediate());
                            assert_ready(f);
                        }
                        Granted::Queued => {
                            prop_assert!(!f.is_immediate());
                            queued_writers.push((id, f));
                        }
                    }
                }
                Op::ReadUnlock => {
                    if model.active_readers == 0 {
                        continue;
                    }
                    let (readers, writer) = model.read_unlock();
                    lock.read_unlock();
                    prop_assert_eq!(readers, 0);
                    if let Some(id) = writer {
                        let idx = queued_writers
                            .iter()
                            .position(|(i, _)| *i == id)
                            .expect("granted writer must be queued");
                        let (_, f) = queued_writers.remove(idx);
                        assert_ready(f);
                    }
                }
                Op::WriteUnlock => {
                    if !model.writer_active {
                        continue;
                    }
                    let (readers, writer) = model.write_unlock();
                    lock.write_unlock();
                    // All batch readers become ready.
                    prop_assert!(readers <= queued_readers.len());
                    for f in queued_readers.drain(..readers) {
                        assert_ready(f);
                    }
                    if let Some(id) = writer {
                        let idx = queued_writers
                            .iter()
                            .position(|(i, _)| *i == id)
                            .expect("granted writer must be queued");
                        let (_, f) = queued_writers.remove(idx);
                        assert_ready(f);
                    }
                }
            }
        }

        // Sanity: the real lock's observable state agrees with the model.
        let (active, writer) = lock.observed_state();
        prop_assert_eq!(active, model.active_readers as u64);
        prop_assert_eq!(writer, model.writer_active);
    }
}
