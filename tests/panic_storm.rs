//! Seeded crash-fault storms (run with `--features chaos -- --test-threads=1`).
//!
//! Where `tests/fault_explorer.rs` *exhausts* panic placement one label at
//! a time, these storms *sample* it under real concurrency: 72 pinned
//! seeds drive the shared decision stream and a budgeted fault stream
//! (`cqs_chaos::set_faults`) so that injected panics land at
//! schedule-dependent crossings of the labelled windows while producers,
//! consumers, resumers and closers race. Every seed asserts the same
//! contract the ISSUE's tentpole demands:
//!
//! * **no silent hang** — every parked waiter settles well before its
//!   timeout, crash or no crash;
//! * **conservation** — every element ends in exactly one sink
//!   (consumed, returned inside an error, or recovered by `drain`);
//! * **fail-fast aftermath** — once a fault poisons a primitive, every
//!   subsequent operation errors promptly instead of parking.
//!
//! Replay any failure with the seed/budget printed in the assertion
//! message (`CQS_CHAOS_FAULTS=<seed>:<budget>` uses the same stream).

#[cfg(feature = "chaos")]
mod enabled {
    use cqs::{Cancelled, Cqs, CqsChannel, CqsConfig, RecvError, SimpleCancellation};
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use std::sync::{Arc, Mutex as StdMutex, OnceLock};
    use std::time::{Duration, Instant};

    /// Hard ceiling: a waiter still parked after this long is hung.
    const DEADLINE: Duration = Duration::from_secs(10);
    /// Settling slower than this (while still beating `DEADLINE`) already
    /// counts as a strand — generous margin for loaded CI machines.
    const STRANDED: Duration = Duration::from_secs(8);
    /// Post-fault operations must error within this window.
    const FAIL_FAST: Duration = Duration::from_secs(2);

    /// 72 pinned seeds, disjoint from the `chaos_injection.rs` family.
    fn seeds() -> impl Iterator<Item = (usize, u64)> {
        (0..72u64).map(|i| (i as usize, 0xFA17_0000 + i * 7919))
    }

    /// Fault budget cycles 1..=3 so storms cover single and repeated
    /// crashes.
    fn budget_for(i: usize) -> u64 {
        1 + (i as u64 % 3)
    }

    /// Chaos state (decision stream, fault stream, panic hook) is
    /// process-global; storms must not overlap.
    fn storm_lock() -> &'static StdMutex<()> {
        static LOCK: OnceLock<StdMutex<()>> = OnceLock::new();
        LOCK.get_or_init(|| StdMutex::new(()))
    }

    fn with_quiet_panics<R>(f: impl FnOnce() -> R) -> R {
        let prev = std::panic::take_hook();
        // Silence the storm of injected panics but keep real failures
        // (assertion messages, unexpected panics) visible.
        std::panic::set_hook(Box::new(|info| {
            let quiet = info
                .payload()
                .downcast_ref::<&str>()
                .map(|s| s.contains("injected crash fault"))
                .or_else(|| {
                    info.payload()
                        .downcast_ref::<String>()
                        .map(|s| s.contains("injected crash fault"))
                })
                .unwrap_or(false);
            if !quiet {
                eprintln!("panic: {info}");
            }
        }));
        let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
        std::panic::set_hook(prev);
        match out {
            Ok(r) => r,
            Err(p) => std::panic::resume_unwind(p),
        }
    }

    /// `true` if the panic payload came from the injector (anything else
    /// is a real bug and must fail the storm).
    fn is_injected(payload: &(dyn std::any::Any + Send)) -> bool {
        payload
            .downcast_ref::<&str>()
            .map(|s| s.contains("injected crash fault"))
            .or_else(|| {
                payload
                    .downcast_ref::<String>()
                    .map(|s| s.contains("injected crash fault"))
            })
            .unwrap_or(false)
    }

    /// Mixed resume/broadcast/close storm over a raw queue: crosses the
    /// `cqs.resume-n.fault.mid-batch`, `cqs.resume-all.fault.pre-clone`,
    /// `future.wake.fault.pre-fire` and `cqs.close.fault.mid-sweep`
    /// windows while six waiters are parked on their own threads.
    #[test]
    fn resume_close_fault_storm() {
        let _serial = storm_lock()
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        with_quiet_panics(|| {
            let baseline = cqs_chaos::faults_injected();
            for (i, seed) in seeds() {
                let budget = budget_for(i);
                let replay = format!(
                    "seed {seed:#x} (budget {budget}; replay with \
                     CQS_CHAOS_FAULTS={seed}:{budget} and CQS_CHAOS_SEED={seed})"
                );
                cqs_chaos::set_seed(seed);
                cqs_chaos::set_faults(seed, budget);

                const W: usize = 6;
                let cqs: Arc<Cqs<u64, SimpleCancellation>> = Arc::new(Cqs::new(
                    CqsConfig::new().segment_size(2),
                    SimpleCancellation,
                ));
                let waiters: Vec<_> = (0..W)
                    .map(|_| {
                        let f = cqs.suspend().expect_future();
                        std::thread::spawn(move || {
                            let start = Instant::now();
                            (f.wait_timeout(DEADLINE), start.elapsed())
                        })
                    })
                    .collect();

                let operator = {
                    let cqs = Arc::clone(&cqs);
                    std::thread::spawn(move || {
                        let mut crashes = 0usize;
                        for op in 0..3usize {
                            let r =
                                std::panic::catch_unwind(std::panic::AssertUnwindSafe(
                                    || match op {
                                        0 => drop(cqs.resume_n(0..3u64, 3)),
                                        1 => drop(cqs.resume_all(99)),
                                        _ => cqs.close(),
                                    },
                                ));
                            if let Err(p) = r {
                                assert!(is_injected(p.as_ref()), "non-injected panic in op {op}");
                                crashes += 1;
                            }
                        }
                        crashes
                    })
                };
                let crashes = operator.join().expect("operator thread died");

                let mut delivered = Vec::new();
                for (w, j) in waiters.into_iter().enumerate() {
                    let (r, elapsed) = j.join().expect("waiter thread died");
                    assert!(
                        elapsed < STRANDED,
                        "waiter {w} hung for {elapsed:?} — {replay}"
                    );
                    if let Ok(v) = r {
                        delivered.push(v);
                    }
                }
                // Conservation: each resume_n value delivered at most once,
                // nothing outside the operator's value set.
                for v in [0u64, 1, 2] {
                    assert!(
                        delivered.iter().filter(|&&d| d == v).count() <= 1,
                        "value {v} duplicated: {delivered:?} — {replay}"
                    );
                }
                assert!(
                    delivered.iter().all(|v| *v == 99 || *v < 3),
                    "unexpected values {delivered:?} — {replay}"
                );
                if crashes == 0 {
                    assert_eq!(delivered.len(), W, "lost wakeups crash-free — {replay}");
                }
                // Aftermath: closed or poisoned, a fresh waiter must fail
                // fast either way.
                let start = Instant::now();
                let r = cqs.suspend().expect_future().wait_timeout(FAIL_FAST);
                assert!(
                    r == Err(Cancelled) && start.elapsed() < FAIL_FAST,
                    "post-storm suspend did not fail fast — {replay}"
                );

                cqs_chaos::clear_faults();
                cqs_chaos::disable();
            }
            assert!(
                cqs_chaos::faults_injected() > baseline,
                "72 seeds crossed the fault windows without a single injection"
            );
        });
    }

    /// One producer/consumer round over a small bounded channel: crosses
    /// the `channel.deliver.fault.pre-count` window (plus the wake window
    /// on handoffs) and checks element conservation through crashes and
    /// the fail-fast aftermath. Fault arming is the caller's business.
    fn channel_round(replay: &str) {
        const PRODUCERS: u64 = 3;
        const PER_PRODUCER: u64 = 8;
        const CONSUMERS: usize = 2;
        let ch: Arc<CqsChannel<u64>> = Arc::new(CqsChannel::bounded(4));
        let attempted = Arc::new(AtomicUsize::new(0));
        let returned = Arc::new(AtomicUsize::new(0));
        let consumed = Arc::new(AtomicUsize::new(0));
        let done = Arc::new(AtomicBool::new(false));

        let consumers: Vec<_> = (0..CONSUMERS)
            .map(|_| {
                let ch = Arc::clone(&ch);
                let consumed = Arc::clone(&consumed);
                let done = Arc::clone(&done);
                std::thread::spawn(move || {
                    let start = Instant::now();
                    while start.elapsed() < DEADLINE {
                        // A receive can grant a parked sender and run its
                        // delivery inline, so the injector may crash this
                        // thread mid-grant — model a dead consumer.
                        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            ch.receive_timeout(Duration::from_millis(50))
                        }));
                        match r {
                            Ok(Ok(_)) => {
                                consumed.fetch_add(1, Ordering::SeqCst);
                            }
                            Ok(Err(RecvError::Closed) | Err(RecvError::Poisoned)) => {
                                return true;
                            }
                            Ok(Err(RecvError::Cancelled)) => {
                                if done.load(Ordering::SeqCst) {
                                    return true;
                                }
                            }
                            Err(p) => {
                                assert!(is_injected(p.as_ref()));
                                return true;
                            }
                        }
                    }
                    false // hit the deadline: hung
                })
            })
            .collect();

        let producers: Vec<_> = (0..PRODUCERS)
            .map(|p| {
                let ch = Arc::clone(&ch);
                let attempted = Arc::clone(&attempted);
                let returned = Arc::clone(&returned);
                std::thread::spawn(move || {
                    for k in 0..PER_PRODUCER {
                        let v = p * PER_PRODUCER + k;
                        attempted.fetch_add(1, Ordering::SeqCst);
                        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            ch.send(v).wait()
                        }));
                        match r {
                            Ok(Ok(())) => {}
                            Ok(Err(_)) => {
                                // Element came back inside the error.
                                returned.fetch_add(1, Ordering::SeqCst);
                            }
                            Err(p) => {
                                // The injector crashed this thread
                                // mid-delivery; the element is in the
                                // orphan list. Model a dead thread.
                                assert!(is_injected(p.as_ref()));
                                return true;
                            }
                        }
                    }
                    false
                })
            })
            .collect();

        let mut crashed_producers = 0usize;
        for j in producers {
            if j.join().expect("producer thread died") {
                crashed_producers += 1;
            }
        }
        // close() sweeps both waiter queues and so crosses the
        // close-sweep fault window itself; a crash here models the
        // closing thread dying. The sweep is run-all-then-rethrow, so
        // the channel still ends closed (and poisoned) with the buffered
        // elements parked in the orphan list for drain().
        let mut crashed_close = false;
        let leftovers = match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| ch.close()))
        {
            Ok(v) => v,
            Err(p) => {
                assert!(is_injected(p.as_ref()));
                crashed_close = true;
                Vec::new()
            }
        };
        done.store(true, Ordering::SeqCst);
        for (c, j) in consumers.into_iter().enumerate() {
            assert!(
                j.join().expect("consumer thread died"),
                "consumer {c} hung past the deadline — {replay}"
            );
        }
        let drained = ch.drain();

        // Conservation: every attempted element is in exactly one
        // sink. Crashed deliveries land in the orphan list and are
        // recovered by close()/drain().
        let accounted = consumed.load(Ordering::SeqCst)
            + returned.load(Ordering::SeqCst)
            + leftovers.len()
            + drained.len();
        assert_eq!(
            accounted,
            attempted.load(Ordering::SeqCst),
            "conservation violated (consumed {} + returned {} + \
                     leftovers {} + drained {}, {crashed_producers} crashed \
                     producers, crashed_close={crashed_close}, stats {:?}) — {replay}",
            consumed.load(Ordering::SeqCst),
            returned.load(Ordering::SeqCst),
            leftovers.len(),
            drained.len(),
            cqs_stats::CqsStats::snapshot()
        );
        if crashed_producers > 0 || crashed_close {
            assert!(ch.is_poisoned(), "crash without poison — {replay}");
        }

        // Aftermath: closed or poisoned, both directions must
        // error fast.
        let start = Instant::now();
        assert!(
            ch.send_timeout(999, FAIL_FAST).is_err() && start.elapsed() < FAIL_FAST,
            "post-storm send did not fail fast — {replay}"
        );
        let start = Instant::now();
        assert!(
            ch.receive_timeout(FAIL_FAST).is_err() && start.elapsed() < FAIL_FAST,
            "post-storm receive did not fail fast — {replay}"
        );
    }

    /// 72-seed producer/consumer storm over the channel round above.
    #[test]
    fn channel_fault_storm() {
        let _serial = storm_lock()
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        with_quiet_panics(|| {
            for (i, seed) in seeds() {
                let budget = budget_for(i);
                let replay = format!(
                    "seed {seed:#x} (budget {budget}; replay with \
                     CQS_CHAOS_FAULTS={seed}:{budget} and CQS_CHAOS_SEED={seed})"
                );
                cqs_chaos::set_seed(seed);
                cqs_chaos::set_faults(seed, budget);
                channel_round(&replay);
                cqs_chaos::clear_faults();
                cqs_chaos::disable();
            }
        });
    }

    /// CI arms `CQS_CHAOS_FAULTS=<seed>:<budget>` in the environment and
    /// runs exactly this test (filter `env_armed` — the sibling storms
    /// call `clear_faults` and would zero an env-armed budget): the budget
    /// must be visible without any in-process `set_faults` call and get
    /// spent inside ordinary storm rounds, which keep the conservation and
    /// fail-fast contract throughout. Without the variable this is a
    /// no-op, so the plain chaos sweep stays deterministic.
    #[test]
    fn env_armed_fault_budget_is_honored() {
        let _serial = storm_lock()
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let _ = cqs_chaos::is_enabled(); // force the env spec parse
        if cqs_chaos::faults_remaining() == 0 {
            return;
        }
        let before = cqs_chaos::faults_injected();
        with_quiet_panics(|| {
            // ~24 window crossings per round at 1-in-8 odds: twenty rounds
            // make a never-spent budget astronomically unlikely.
            for round in 0..20 {
                channel_round(&format!("env-armed round {round}"));
                if cqs_chaos::faults_remaining() == 0 && cqs_chaos::faults_injected() > before {
                    break;
                }
            }
        });
        assert!(
            cqs_chaos::faults_injected() > before,
            "environment-armed fault budget never produced an injection"
        );
    }
}

#[cfg(not(feature = "chaos"))]
mod disabled {
    use cqs::CqsChannel;

    /// Without `--features chaos` the fault machinery is an inert mirror:
    /// arming it must change nothing and inject nothing.
    #[test]
    fn fault_machinery_is_inert_without_chaos() {
        cqs_chaos::set_faults(0xFA17, 1_000);
        let ch: CqsChannel<u32> = CqsChannel::unbounded();
        for v in 0..32 {
            ch.send(v).wait().unwrap();
        }
        for v in 0..32 {
            assert_eq!(ch.receive().wait(), Ok(v));
        }
        assert_eq!(cqs_chaos::faults_injected(), 0);
        assert_eq!(cqs_chaos::faults_remaining(), 0);
        assert_eq!(cqs_chaos::fault_point_count(), 0);
        cqs_chaos::clear_faults();
    }
}
