//! The timeout-vs-resume refusal race (paper, Listing 5's `REFUSE` path).
//!
//! An `acquire_timeout`/`lock_timeout` whose deadline expires at the same
//! moment a `release`/`unlock` commits to resuming it forces the smart
//! cancellation machinery to *refuse* the in-flight resumption: the permit
//! must flow back into the primitive's state counter, never be lost inside
//! the queue and never be duplicated.
//!
//! These tests run in the default build; with `--features chaos` each
//! iteration additionally reseeds the fault-injection schedule so the
//! refusal window is stretched in a different deterministic way every time.

use cqs::{Mutex, Semaphore};
use std::sync::Arc;
use std::time::Duration;

const ITERS: usize = 150;

/// With chaos enabled, give every iteration its own deterministic
/// schedule; the seed is derived from the iteration so a failure message's
/// iteration number identifies the replay seed.
fn reseed(i: usize) -> u64 {
    let seed = 0xACE5_0000 + i as u64;
    #[cfg(feature = "chaos")]
    cqs_chaos::set_seed(seed);
    seed
}

#[test]
fn expiring_acquire_timeout_never_loses_the_permit() {
    for i in 0..ITERS {
        let seed = reseed(i);
        let s = Arc::new(Semaphore::new(1));
        let held = s.acquire_blocking().unwrap();
        let s2 = Arc::clone(&s);
        // Deadline jittered around "already expired" so the cancellation
        // lands on every side of the racing release.
        let timeout = Duration::from_micros(20 * (i as u64 % 5));
        let waiter = std::thread::spawn(move || s2.acquire_timeout(timeout).map(drop));
        drop(held); // release() racing the expiry
        let _ = waiter.join().unwrap(); // either outcome is legal...
        assert_eq!(
            s.available_permits(),
            1,
            "permit lost or duplicated in refusal race (iteration {i}, seed {seed:#x})"
        );
    }
    #[cfg(feature = "chaos")]
    cqs_chaos::disable();
}

#[test]
fn expiring_lock_timeout_never_loses_the_lock() {
    for i in 0..ITERS {
        let seed = reseed(i);
        let m = Arc::new(Mutex::new(0u32));
        let g = m.lock().unwrap();
        let m2 = Arc::clone(&m);
        let timeout = Duration::from_micros(20 * (i as u64 % 5));
        let waiter = std::thread::spawn(move || match m2.lock_timeout(timeout) {
            Ok(mut g) => {
                *g += 1;
                true
            }
            Err(_) => false,
        });
        drop(g); // unlock() racing the expiry
        let _ = waiter.join().unwrap();
        // However the race resolved, the lock must be free and observable.
        assert!(
            m.try_lock().is_some(),
            "lock stranded in the queue after refusal race (iteration {i}, seed {seed:#x})"
        );
    }
    #[cfg(feature = "chaos")]
    cqs_chaos::disable();
}
