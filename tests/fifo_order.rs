//! FIFO (fairness) tests. The paper does not prove FIFO mechanically but
//! states it follows from the basic algorithm; these tests check it in
//! regimes where the order is observable.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use cqs::{Cqs, CqsConfig, QueuePool, RawMutex, Semaphore, SimpleCancellation};

/// Raw CQS: waiters complete in suspension order.
#[test]
fn cqs_fifo_across_segments() {
    let cqs: Cqs<u64> = Cqs::new(CqsConfig::new().segment_size(2), SimpleCancellation);
    let futures: Vec<_> = (0..64).map(|_| cqs.suspend().expect_future()).collect();
    for v in 0..64 {
        cqs.resume(v).unwrap();
    }
    for (i, f) in futures.into_iter().enumerate() {
        assert_eq!(f.wait(), Ok(i as u64));
    }
}

/// Semaphore: threads that demonstrably queued earlier acquire earlier.
#[test]
fn semaphore_queue_order_is_fifo() {
    let semaphore = Arc::new(Semaphore::new(1));
    semaphore.acquire().wait().unwrap();

    // Register waiters strictly one at a time from the main thread so the
    // queue order is known, then hand each future to its own thread.
    const WAITERS: usize = 10;
    let futures: Vec<_> = (0..WAITERS).map(|_| semaphore.acquire()).collect();
    let turn = Arc::new(AtomicUsize::new(0));
    let handles: Vec<_> = futures
        .into_iter()
        .enumerate()
        .map(|(i, f)| {
            let semaphore = Arc::clone(&semaphore);
            let turn = Arc::clone(&turn);
            std::thread::spawn(move || {
                f.wait().unwrap();
                let t = turn.fetch_add(1, Ordering::SeqCst);
                assert_eq!(t, i, "waiter {i} ran at turn {t}");
                semaphore.release();
            })
        })
        .collect();
    semaphore.release();
    for h in handles {
        h.join().unwrap();
    }
}

/// FIFO is preserved around cancelled waiters: the queue order of the
/// survivors is unchanged.
#[test]
fn fifo_survives_interleaved_cancellation() {
    let semaphore = Arc::new(Semaphore::new(1));
    semaphore.acquire().wait().unwrap();

    let futures: Vec<_> = (0..12).map(|_| semaphore.acquire()).collect();
    // Cancel every third waiter.
    let mut survivors = Vec::new();
    for (i, f) in futures.into_iter().enumerate() {
        if i % 3 == 0 {
            assert!(f.cancel());
        } else {
            survivors.push((i, f));
        }
    }
    let turn = Arc::new(AtomicUsize::new(0));
    let expected_order: Vec<usize> = survivors.iter().map(|(i, _)| *i).collect();
    let handles: Vec<_> = survivors
        .into_iter()
        .enumerate()
        .map(|(k, (_, f))| {
            let semaphore = Arc::clone(&semaphore);
            let turn = Arc::clone(&turn);
            std::thread::spawn(move || {
                f.wait().unwrap();
                let t = turn.fetch_add(1, Ordering::SeqCst);
                assert_eq!(t, k, "survivor #{k} resumed out of order");
                semaphore.release();
            })
        })
        .collect();
    let _ = expected_order;
    semaphore.release();
    for h in handles {
        h.join().unwrap();
    }
}

/// Pool: waiting takers receive elements in arrival order.
#[test]
fn pool_waiters_fifo() {
    let pool: QueuePool<u64> = QueuePool::new();
    let futures: Vec<_> = (0..8).map(|_| pool.take()).collect();
    for v in 0..8 {
        pool.put(v);
    }
    for (i, f) in futures.into_iter().enumerate() {
        assert_eq!(f.wait(), Ok(i as u64));
    }
}

/// Mutex under contention: no waiter starves (a coarse fairness check — in
/// a fair lock every thread completes its quota).
#[test]
fn mutex_no_starvation() {
    const THREADS: usize = 6;
    const OPS: usize = 300;
    let mutex = Arc::new(RawMutex::new());
    let finished = Arc::new(AtomicUsize::new(0));
    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let mutex = Arc::clone(&mutex);
            let finished = Arc::clone(&finished);
            std::thread::spawn(move || {
                for _ in 0..OPS {
                    mutex.lock().wait().unwrap();
                    std::hint::black_box(0u64);
                    mutex.unlock();
                }
                finished.fetch_add(1, Ordering::SeqCst);
            })
        })
        .collect();
    // Generous watchdog: everything should finish far sooner.
    let deadline = std::time::Instant::now() + Duration::from_secs(60);
    for h in handles {
        assert!(
            std::time::Instant::now() < deadline,
            "mutex starved some thread"
        );
        h.join().unwrap();
    }
    assert_eq!(finished.load(Ordering::SeqCst), THREADS);
}
