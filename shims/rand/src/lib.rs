//! Offline stand-in for the `rand` crate.
//!
//! The build container has no access to crates.io, so this shim provides
//! the exact subset of the `rand 0.8` API the workspace uses: a seedable
//! [`rngs::SmallRng`] plus the [`Rng`]/[`SeedableRng`] traits with
//! `gen_range` over primitive integer and float ranges. The generator is
//! xoshiro256** seeded through SplitMix64 — the same construction the real
//! `SmallRng` uses on 64-bit targets.

use std::ops::Range;

/// A random number generator seedable from a `u64`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling support for `Rng::gen_range` argument types.
pub trait SampleRange<T> {
    /// Draws one value from the range using `rng`.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing random value generation, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore> Rng for R {}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
    )*};
}

impl_signed_range!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty range in gen_range");
        let unit = (rng.next_u64() >> 40) as f32 / (1u32 << 24) as f32;
        self.start + unit * (self.end - self.start)
    }
}

/// Expands a 64-bit seed into well-mixed state words (SplitMix64).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Small-state generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// xoshiro256** — matches the construction of `rand`'s `SmallRng` on
    /// 64-bit platforms: fast, small, not cryptographically secure.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            SmallRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
        let mut c = SmallRng::seed_from_u64(8);
        let same: usize = (0..100)
            .filter(|_| a.gen_range(0u64..1000) == c.gen_range(0u64..1000))
            .count();
        assert!(same < 10, "different seeds produced near-identical streams");
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let f = rng.gen_range(f64::EPSILON..1.0);
            assert!((f64::EPSILON..1.0).contains(&f));
            let i = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn float_mean_is_centered() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mean: f64 = (0..10_000).map(|_| rng.gen_range(0.0f64..1.0)).sum::<f64>() / 10_000.0;
        assert!(
            (0.45..0.55).contains(&mean),
            "uniform mean {mean} off-center"
        );
    }
}
