//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build container has no access to crates.io, so this shim provides the
//! subset of the criterion 0.5 API the workspace's benches use: `Criterion`,
//! `benchmark_group` with `sample_size`/`warm_up_time`/`measurement_time`/
//! `bench_function`/`finish`, `BenchmarkId`, `Bencher::{iter, iter_custom}`,
//! and the `criterion_group!`/`criterion_main!` macros. Measurement is a
//! straightforward wall-clock median over the configured sample count —
//! good enough for the relative comparisons EXPERIMENTS.md makes, without
//! criterion's statistical machinery.

use std::fmt;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Prevents the compiler from optimising away a benchmarked value.
pub fn black_box<T>(value: T) -> T {
    std_black_box(value)
}

/// A benchmark identifier rendered as `function/parameter`.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a displayable parameter.
    pub fn new<S: Into<String>, P: fmt::Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            label: format!("{}/{parameter}", function_name.into()),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Timing context handed to each benchmark closure.
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, automatically choosing the per-sample iteration count.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm up and calibrate: grow the batch until it costs >= ~1ms.
        let mut batch: u64 = 1;
        let warm_deadline = Instant::now() + self.warm_up_time;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                std_black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(1) || batch >= 1 << 20 {
                if Instant::now() >= warm_deadline {
                    break;
                }
            } else {
                batch = batch.saturating_mul(2);
            }
        }
        let per_sample_budget = self.measurement_time / self.sample_size as u32;
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                std_black_box(routine());
            }
            self.samples.push(start.elapsed() / batch as u32);
            if start.elapsed() > per_sample_budget.saturating_mul(4) {
                break; // routine is far slower than budgeted; stop early
            }
        }
    }

    /// Times `routine` with caller-measured durations, as criterion's
    /// `iter_custom`: the closure receives an iteration count and returns
    /// the total time those iterations took.
    pub fn iter_custom<F: FnMut(u64) -> Duration>(&mut self, mut routine: F) {
        let iters: u64 = 1;
        std_black_box(routine(iters)); // warm-up pass
        self.samples.clear();
        let deadline = Instant::now() + self.measurement_time;
        for _ in 0..self.sample_size {
            let total = routine(iters);
            self.samples.push(total / iters as u32);
            if Instant::now() >= deadline {
                break;
            }
        }
    }

    fn median(&mut self) -> Option<Duration> {
        if self.samples.is_empty() {
            return None;
        }
        self.samples.sort();
        Some(self.samples[self.samples.len() / 2])
    }
}

/// A named group of related benchmarks sharing timing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples to collect per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the warm-up duration before sampling starts.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the total measurement budget for each benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Runs one benchmark and prints its median sample time.
    pub fn bench_function<D: fmt::Display, F: FnMut(&mut Bencher)>(&mut self, id: D, mut f: F) {
        let mut bencher = Bencher {
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut bencher);
        let label = format!("{}/{}", self.name, id);
        match bencher.median() {
            Some(median) => println!("{label:<60} median {median:>12.2?}"),
            None => println!("{label:<60} (no samples collected)"),
        }
        self.criterion.completed += 1;
    }

    /// Ends the group (parity with criterion; prints a separator).
    pub fn finish(self) {
        println!();
    }
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    completed: usize,
}

impl Criterion {
    /// Opens a benchmark group with shim default timing settings.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== {name} ==");
        BenchmarkGroup {
            name,
            criterion: self,
            sample_size: 10,
            warm_up_time: Duration::from_millis(200),
            measurement_time: Duration::from_secs(1),
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<D: fmt::Display, F: FnMut(&mut Bencher)>(&mut self, id: D, f: F) {
        let mut group = self.benchmark_group("bench");
        group.bench_function(id, f);
        group.finish();
    }
}

/// Declares a function that runs each listed benchmark with a fresh
/// `Criterion` instance.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main`, invoking each benchmark group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_reports_a_median() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim-smoke");
        group.sample_size(3);
        group.warm_up_time(Duration::from_millis(1));
        group.measurement_time(Duration::from_millis(10));
        group.bench_function("spin", |b| b.iter(|| black_box(1 + 1)));
        group.bench_function(BenchmarkId::new("spin", 4), |b| {
            b.iter_custom(|iters| {
                let start = Instant::now();
                for _ in 0..iters {
                    black_box(2 + 2);
                }
                start.elapsed()
            })
        });
        group.finish();
        assert_eq!(c.completed, 2);
    }

    fn bencher(sample_size: usize) -> Bencher {
        Bencher {
            warm_up_time: Duration::from_millis(1),
            measurement_time: Duration::from_secs(5),
            sample_size,
            samples: Vec::new(),
        }
    }

    #[test]
    fn iter_custom_divides_total_by_iteration_count() {
        let mut b = bencher(5);
        // The routine reports a total proportional to the requested
        // iteration count, so every per-iteration sample must normalise to
        // exactly 100µs regardless of what `iters` the shim chose.
        b.iter_custom(|iters| Duration::from_micros(100 * iters));
        assert!(!b.samples.is_empty(), "must collect at least one sample");
        assert!(b.samples.len() <= 5, "must not exceed the sample budget");
        for s in &b.samples {
            assert_eq!(*s, Duration::from_micros(100));
        }
        assert_eq!(b.median(), Some(Duration::from_micros(100)));
    }

    #[test]
    fn iter_custom_warm_up_pass_is_discarded() {
        let mut b = bencher(3);
        let mut calls = 0u32;
        b.iter_custom(|_| {
            calls += 1;
            Duration::from_micros(10)
        });
        // One warm-up invocation plus one per recorded sample.
        assert_eq!(calls as usize, b.samples.len() + 1);
    }

    #[test]
    fn median_is_order_insensitive() {
        for permutation in [[5u64, 1, 3], [1, 3, 5], [3, 5, 1]] {
            let mut b = bencher(3);
            b.samples = permutation
                .iter()
                .map(|&ms| Duration::from_millis(ms))
                .collect();
            assert_eq!(b.median(), Some(Duration::from_millis(3)));
        }
    }

    #[test]
    fn median_of_even_sample_count_is_upper_middle() {
        // The shim intentionally keeps the cheap nearest-rank definition
        // (criterion proper interpolates); pin it down so a change shows up.
        let mut b = bencher(4);
        b.samples = [4u64, 1, 2, 3]
            .iter()
            .map(|&ms| Duration::from_millis(ms))
            .collect();
        assert_eq!(b.median(), Some(Duration::from_millis(3)));
    }

    #[test]
    fn median_of_no_samples_is_none() {
        assert_eq!(bencher(1).median(), None);
    }
}
