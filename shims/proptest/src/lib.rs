//! Offline stand-in for the `proptest` property-testing crate.
//!
//! The build container has no access to crates.io, so this shim provides the
//! subset of the proptest 1.x API the workspace's tests use: the [`Strategy`]
//! trait with `prop_map`/`prop_flat_map`, `Just`, integer-range and tuple
//! strategies, `collection::vec`, `option::of`, the weighted
//! [`prop_oneof!`] union, and the [`proptest!`] / [`prop_assert!`] /
//! [`prop_assert_eq!`] macros with `ProptestConfig::with_cases`.
//!
//! Cases are generated from a deterministic per-case seed derived from a base
//! seed (overridable via the `PROPTEST_SEED` env var). A failing case reports
//! that base seed so the failure replays exactly; there is no shrinking.

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of test values, mirroring `proptest::strategy::Strategy`.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Produces one value from `rng`.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { base: self, f }
        }

        /// Derives a second strategy from each generated value.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { base: self, f }
        }

        /// Erases the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

    impl<V> Strategy for Box<dyn Strategy<Value = V>> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            (**self).generate(rng)
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.base.generate(rng))
        }
    }

    /// The result of [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        base: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.base.generate(rng)).generate(rng)
        }
    }

    /// A weighted choice between strategies, built by [`prop_oneof!`].
    pub struct Union<V> {
        arms: Vec<(u32, BoxedStrategy<V>)>,
        total_weight: u64,
    }

    impl<V> Union<V> {
        /// Builds a union from `(weight, strategy)` arms.
        pub fn new(arms: Vec<(u32, BoxedStrategy<V>)>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            let total_weight = arms.iter().map(|(w, _)| u64::from(*w)).sum();
            assert!(total_weight > 0, "prop_oneof! weights sum to zero");
            Union { arms, total_weight }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let mut pick = rng.next_u64() % self.total_weight;
            for (weight, strategy) in &self.arms {
                let weight = u64::from(*weight);
                if pick < weight {
                    return strategy.generate(rng);
                }
                pick -= weight;
            }
            unreachable!("weighted pick out of range")
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + (rng.next_u64() % span) as i128) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A strategy for `Vec`s with lengths drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates vectors of `element` values with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.end.saturating_sub(self.size.start).max(1) as u64;
            let len = self.size.start + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A strategy for `Option`s: `None` half the time, `Some` otherwise.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// Generates `Option<V>` values from `inner`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64() & 1 == 0 {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }
}

pub mod test_runner {
    use crate::strategy::Strategy;
    use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

    /// Per-test configuration, mirroring `proptest::test_runner::Config`.
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases to run.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` generated inputs.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// A test-case failure raised by `prop_assert!`-family macros.
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        /// Wraps a failure message.
        pub fn fail(message: String) -> Self {
            TestCaseError(message)
        }
    }

    /// Deterministic splitmix64 generator used for case generation.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds a generator.
        pub fn new(seed: u64) -> Self {
            TestRng { state: seed }
        }

        /// Returns the next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    const DEFAULT_BASE_SEED: u64 = 0x5EED_CA5E_0BAD_F00D;

    fn base_seed() -> u64 {
        match std::env::var("PROPTEST_SEED") {
            Ok(text) => {
                let text = text.trim();
                let parsed = if let Some(hex) = text.strip_prefix("0x") {
                    u64::from_str_radix(hex, 16)
                } else {
                    text.parse()
                };
                parsed.unwrap_or_else(|_| {
                    panic!("PROPTEST_SEED must be a u64 (decimal or 0x-hex), got `{text}`")
                })
            }
            Err(_) => DEFAULT_BASE_SEED,
        }
    }

    /// Executes `config.cases` generated inputs, panicking (with the base
    /// seed, for deterministic replay) on the first failing case.
    pub fn run<S, F>(config: ProptestConfig, strategy: S, mut test: F)
    where
        S: Strategy,
        F: FnMut(S::Value) -> Result<(), TestCaseError>,
    {
        let base = base_seed();
        for case in 0..config.cases {
            // A distinct, well-mixed seed per case, recoverable from `base`.
            let case_seed =
                TestRng::new(base ^ u64::from(case).wrapping_mul(0xA24B_AED4_963E_E407)).next_u64();
            let mut rng = TestRng::new(case_seed);
            let value = strategy.generate(&mut rng);
            match catch_unwind(AssertUnwindSafe(|| test(value))) {
                Ok(Ok(())) => {}
                Ok(Err(TestCaseError(message))) => panic!(
                    "proptest case {case}/{} failed; replay with PROPTEST_SEED={base:#x}\n{message}",
                    config.cases
                ),
                Err(payload) => {
                    eprintln!(
                        "proptest case {case}/{} panicked; replay with PROPTEST_SEED={base:#x}",
                        config.cases
                    );
                    resume_unwind(payload);
                }
            }
        }
    }
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Builds a weighted [`strategy::Union`] over strategies yielding one value
/// type: `prop_oneof![3 => a, 1 => b]` or unweighted `prop_oneof![a, b]`.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Fails the current proptest case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current proptest case unless the two values compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` == `{:?}`: {}",
            left,
            right,
            format!($($fmt)+)
        );
    }};
}

/// Declares property tests: each `fn name(pat in strategy) { body }` becomes
/// a `#[test]` that runs the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($config:expr);) => {};
    (config = ($config:expr);
     $(#[$meta:meta])*
     fn $name:ident($pat:pat in $strat:expr) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::test_runner::run($config, $strat, |$pat| {
                $body
                ::std::result::Result::<(), $crate::test_runner::TestCaseError>::Ok(())
            });
        }
        $crate::__proptest_impl! { config = ($config); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Clone, Debug, PartialEq)]
    enum Op {
        Push(u64),
        Pop,
    }

    fn ops() -> impl Strategy<Value = Vec<Op>> {
        prop::collection::vec(
            prop_oneof![
                3 => (0u64..100).prop_map(Op::Push),
                1 => Just(Op::Pop),
            ],
            0..40,
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// A vec behaves like a stack under the generated op sequence.
        #[test]
        fn vec_models_stack(ops in ops()) {
            let mut stack = Vec::new();
            let mut model = Vec::new();
            for op in ops {
                match op {
                    Op::Push(v) => {
                        stack.push(v);
                        model.push(v);
                    }
                    Op::Pop => prop_assert_eq!(stack.pop(), model.pop()),
                }
            }
            prop_assert!(stack == model, "diverged: {:?} vs {:?}", stack, model);
            prop_assert_eq!(stack.len(), model.len());
        }

        /// Flat-mapped tuple strategies respect the outer bound.
        #[test]
        fn flat_map_respects_bound((cap, items) in (1usize..5).prop_flat_map(|cap| {
            (Just(cap), prop::collection::vec(0u64..10, 0..8))
        })) {
            prop_assert!((1..5).contains(&cap));
            prop_assert!(items.len() < 8);
        }
    }

    #[test]
    fn option_of_produces_both_variants() {
        let mut rng = crate::test_runner::TestRng::new(9);
        let strat = prop::option::of(0u64..10);
        let values: Vec<_> = (0..64).map(|_| strat.generate(&mut rng)).collect();
        assert!(values.iter().any(Option::is_some));
        assert!(values.iter().any(Option::is_none));
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let strat = ops();
        let a = strat.generate(&mut crate::test_runner::TestRng::new(42));
        let b = strat.generate(&mut crate::test_runner::TestRng::new(42));
        assert_eq!(a, b);
    }
}
